package rt

import (
	"fmt"
	"strings"

	"visa/internal/clab"
	"visa/internal/fault"
	"visa/internal/obs"
)

// The safety campaign is the adversarial counterpart of Figure 4: instead
// of the paper's benign cache-flush perturbation it drives seeded timing
// faults (internal/fault) through both processors and asserts the VISA
// safety argument end to end — every injected overrun on the complex core
// is caught by the watchdog and answered with a simple-mode switch, the
// explicitly-safe core never exceeds its WCET bound, and no deadline is
// missed anywhere in the sweep. A campaign that merely *degrades* power is
// fine; one that breaks any of those three properties fails its job.

// SafetyProcStats summarizes one processor's run under fault injection.
type SafetyProcStats struct {
	Faults          int64 // faults actually injected (hook draws that hit)
	Missed          int   // watchdog-detected overruns
	SimpleModeTasks int   // overruns answered by a simple-mode switch
	Violations      int   // deadline violations (must be zero)
	WCETExceed      int   // simple-fixed sub-task AETs above the WCET bound (must be zero)
}

// SafetyRow is one (benchmark, fault spec) cell of the safety campaign.
type SafetyRow struct {
	Bench   string
	Spec    fault.Spec
	Complex SafetyProcStats
	Simple  SafetyProcStats
}

func safetyStats(r *ProcResult) SafetyProcStats {
	return SafetyProcStats{
		Faults:          r.FaultsInjected,
		Missed:          r.MissedTasks,
		SimpleModeTasks: r.SimpleModeTasks,
		Violations:      r.DeadlineViolations,
		WCETExceed:      r.WCETExceedances,
	}
}

// runSafetyJob executes both processors under cfg's fault plan and checks
// the safety property. Unlike RunComparison it feeds the fault spec to the
// simple-fixed core too — the paranoid injector must be provably harmless
// there, and the run verifies it.
func runSafetyJob(b *clab.Benchmark, cfg Config) (*SafetyRow, error) {
	if cfg.Fault == nil {
		return nil, errf("rt: %s: safety job without a fault spec", b.Name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := GetSetup(b)
	if err != nil {
		return nil, err
	}
	cx, err := RunProcessor(s, ProcComplex, cfg)
	if err != nil {
		return nil, err
	}
	sf, err := RunProcessor(s, ProcSimpleFixed, cfg)
	if err != nil {
		return nil, err
	}
	row := &SafetyRow{Bench: b.Name, Spec: *cfg.Fault,
		Complex: safetyStats(cx), Simple: safetyStats(sf)}

	// The three safety assertions. These are job failures, not report
	// footnotes: a broken property must surface through Report.Err().
	if cx.DeadlineViolations > 0 || sf.DeadlineViolations > 0 {
		return nil, errf("rt: %s [%s]: DEADLINE VIOLATED under injection (complex=%d simple=%d) — safety property broken",
			b.Name, cfg.Fault, cx.DeadlineViolations, sf.DeadlineViolations)
	}
	if sf.WCETExceedances > 0 {
		return nil, errf("rt: %s [%s]: %d sub-task AETs above the WCET bound on simple-fixed — paranoid injector breached the safety anchor",
			b.Name, cfg.Fault, sf.WCETExceedances)
	}
	if cx.MissedTasks != cx.SimpleModeTasks {
		return nil, errf("rt: %s [%s]: %d watchdog overruns but %d simple-mode switches — an overrun escaped recovery",
			b.Name, cfg.Fault, cx.MissedTasks, cx.SimpleModeTasks)
	}

	if mw := cfg.Obs.M(); mw != nil {
		mw.Write(obs.Record{
			obs.F("kind", "safety"),
			obs.F("label", cfg.Label),
			obs.F("bench", b.Name),
			obs.F("fault", cfg.Fault.String()),
			obs.F("complex_faults", row.Complex.Faults),
			obs.F("complex_missed", row.Complex.Missed),
			obs.F("complex_simple_mode", row.Complex.SimpleModeTasks),
			obs.F("simple_faults", row.Simple.Faults),
			obs.F("simple_missed", row.Simple.Missed),
			obs.F("violations", row.Complex.Violations+row.Simple.Violations),
			obs.F("wcet_exceed", row.Simple.WCETExceed),
		})
	}
	return row, nil
}

// SafetyCampaign configures the fault sweep. The zero value selects the
// full taxonomy at two intensities — the default campaign.
type SafetyCampaign struct {
	// Kinds are the fault kinds to sweep; nil selects all of them.
	Kinds []fault.Kind
	// Rates are injection rates in draws-per-RateScale; nil selects a
	// moderate and an aggressive point.
	Rates []int
	// Cycles is the per-fault stall magnitude; 0 selects
	// fault.DefaultCycles. Kept well below fault.MaxCycles so an injected
	// stall plus the watchdog's one-retire detection lag stays inside the
	// recovery slack.
	Cycles int64
	// Seed is the campaign's base seed; every job derives its own spec
	// seed from it, so one campaign seed reproduces the whole sweep.
	Seed uint64
	// Instances per job; 0 selects 40 (enough periods for the PET
	// estimator to warm up and the sweep to hit steady state).
	Instances int
}

func (c *SafetyCampaign) kinds() []fault.Kind {
	if len(c.Kinds) > 0 {
		return c.Kinds
	}
	return fault.Kinds()
}

func (c *SafetyCampaign) rates() []int {
	if len(c.Rates) > 0 {
		return c.Rates
	}
	return []int{50, 250}
}

func (c *SafetyCampaign) cycles() int64 {
	if c.Cycles > 0 {
		return c.Cycles
	}
	return fault.DefaultCycles
}

func (c *SafetyCampaign) instances() int {
	if c.Instances > 0 {
		return c.Instances
	}
	return 40
}

// SafetyCampaignPlan builds the fault sweep: kind x rate x benchmark, every
// cell a JobSafety under a tight deadline. Input seeds stay fixed (the
// D-cache pad is derived from the default-seed cold run); the adversary is
// the fault plan, not the workload.
func SafetyCampaignPlan(benches []*clab.Benchmark, c SafetyCampaign) *Plan {
	var jobs []Job
	for bi, b := range benches {
		for _, k := range c.kinds() {
			for _, rate := range c.rates() {
				spec := fault.Spec{
					Kind:   k,
					Rate:   rate,
					Cycles: c.cycles(),
					Seed:   fault.DeriveSeed(c.Seed, uint64(bi), uint64(k), uint64(rate)),
				}
				jobs = append(jobs, Job{Bench: b, Kind: JobSafety, Config: NewConfig(
					WithTightDeadline(true),
					WithInstances(c.instances()),
					WithFaultSpec(spec),
					WithLabel(fmt.Sprintf("safety/%s/%s", b.Name, spec)),
				)})
			}
		}
	}
	return &Plan{Name: "safety", Jobs: jobs, Render: renderTableS}
}

// renderTableS renders the campaign like the paper's tables: one line per
// (benchmark, fault) cell with the injection volume and the recovery
// bookkeeping that proves the safety property held.
func renderTableS(r *Report) string {
	var b strings.Builder
	b.WriteString(FormatSafetyRows(r.SafetyRows()))
	ok := len(r.SafetyRows())
	fmt.Fprintf(&b, "\n%d/%d cells passed the safety assertions.\n", ok, len(r.Plan.Jobs))
	return b.String()
}

// FormatSafetyRows renders safety-campaign rows like the paper's tables:
// one line per (benchmark, fault) cell with the injection volume and the
// recovery bookkeeping that proves the safety property held.
func FormatSafetyRows(rows []SafetyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE S. Safety campaign: seeded fault injection, tight deadline.\n")
	fmt.Fprintf(&b, "Every row passed: zero deadline violations, zero WCET exceedances,\n")
	fmt.Fprintf(&b, "every complex-core overrun answered by a simple-mode switch.\n\n")
	fmt.Fprintf(&b, "%-8s %-20s %10s %8s %8s %10s %8s\n",
		"bench", "fault", "cx.faults", "cx.miss", "cx.simp", "sf.faults", "sf.miss")
	for _, row := range rows {
		// The per-job seed is derived, so the table shows the readable
		// kind:rate:cycles form; the full spec is in the labels/metrics.
		fmt.Fprintf(&b, "%-8s %-20s %10d %8d %8d %10d %8d\n",
			row.Bench, fmt.Sprintf("%s:%d:%d", row.Spec.Kind, row.Spec.Rate, row.Spec.Cycles),
			row.Complex.Faults, row.Complex.Missed, row.Complex.SimpleModeTasks,
			row.Simple.Faults, row.Simple.Missed)
	}
	return b.String()
}
