package rt

import (
	"fmt"

	"visa/internal/core"
	"visa/internal/obs"
)

// Trace lanes (thread ids) within one processor's timeline process.
const (
	tidTask = 1 // task-instance slices
	tidSub  = 2 // per-sub-task slices
	tidMode = 3 // checkpoint / mode-switch / DVS events
)

// instanceObs translates one task instance's cycle-domain happenings into
// trace events on the experiment's simulated-time axis. It mirrors
// runTask's time accounting exactly: cycles before the recovery switch are
// priced at the speculative frequency, the switch itself costs OvhdNs
// (EQ 1-4's ovhd term), and cycles after the resume point are priced at the
// recovery frequency — so trace timestamps agree with the reported task
// times to the nanosecond. All methods are no-ops on a nil receiver, the
// disabled path of the run-time harness.
type instanceObs struct {
	tr     *obs.Tracer
	pid    int
	idx    int
	baseNs float64 // release time of this instance (idx * deadline)
	fsMHz  int
	frMHz  int

	switched    bool
	switchAt    int64   // cycle of the miss / frequency-switch point
	switchStart int64   // cycle at which recovery-domain timing resumes
	specNs      float64 // task-relative ns of the switch point
}

func newInstanceObs(tr *obs.Tracer, pid, idx int, baseNs float64, plan *core.Plan) *instanceObs {
	if tr == nil {
		return nil
	}
	return &instanceObs{
		tr: tr, pid: pid, idx: idx, baseNs: baseNs,
		fsMHz: plan.Spec.FMHz, frMHz: plan.Rec.FMHz,
	}
}

// nsAt maps a task-relative cycle to absolute experiment nanoseconds.
func (o *instanceObs) nsAt(c int64) float64 {
	if !o.switched || c <= o.switchAt {
		return o.baseNs + float64(c)*1000/float64(o.fsMHz)
	}
	if c < o.switchStart {
		c = o.switchStart // the drain window collapses onto the ovhd span
	}
	return o.baseNs + o.specNs + OvhdNs + float64(c-o.switchStart)*1000/float64(o.frMHz)
}

// subTask records sub-task k's execution slice and its reconstructed AET.
func (o *instanceObs) subTask(k int, startCyc, endCyc int64, aetCycles float64) {
	if o == nil {
		return
	}
	st, en := o.nsAt(startCyc), o.nsAt(endCyc)
	o.tr.Complete(o.pid, tidSub, "subtask", fmt.Sprintf("sub-task %d", k), st, en-st,
		obs.A("instance", o.idx), obs.A("sub_task", k),
		obs.A("aet_cycles_1ghz", aetCycles))
}

// checkpoint records a passed checkpoint at a sub-task boundary: the
// watchdog had marginCycles left and gains budgetAdd for the next sub-task.
func (o *instanceObs) checkpoint(k int, nowCyc, marginCycles, budgetAdd int64) {
	if o == nil {
		return
	}
	ns := o.nsAt(nowCyc)
	o.tr.Instant(o.pid, tidMode, "visa", fmt.Sprintf("checkpoint %d pass", k), ns,
		obs.A("instance", o.idx), obs.A("sub_task", k),
		obs.A("margin_cycles", marginCycles), obs.A("budget_add_cycles", budgetAdd))
	o.tr.Counter(o.pid, "watchdog margin", ns, obs.A("cycles", marginCycles))
}

// petMispredict records the watchdog expiry on the explicitly-safe core:
// the sub-task finishes at f_spec and the frequency switch is deferred to
// the next boundary (EQ 2, conventional recovery).
func (o *instanceObs) petMispredict(k int, nowCyc int64) {
	if o == nil {
		return
	}
	o.tr.Instant(o.pid, tidMode, "visa", "watchdog.fired", o.nsAt(nowCyc),
		obs.A("instance", o.idx), obs.A("sub_task", k), obs.A("recovery", "EQ2"))
	o.tr.Instant(o.pid, tidMode, "visa", "pet-mispredict", o.nsAt(nowCyc),
		obs.A("instance", o.idx), obs.A("sub_task", k))
	o.tr.Counter(o.pid, "watchdog margin", o.nsAt(nowCyc), obs.A("cycles", 0))
}

// checkpointMiss records the recovery switch: on the complex core a missed
// checkpoint with a drain into simple mode (EQ 4), on simple-fixed the
// deferred frequency switch (EQ 2). The OvhdNs span is the equations' fixed
// overhead term, attributed explicitly.
func (o *instanceObs) checkpointMiss(k int, atCyc, resumeCyc int64, simpleMode bool) {
	if o == nil {
		return
	}
	missNs := o.nsAt(atCyc)
	o.specNs = missNs - o.baseNs
	o.switched, o.switchAt, o.switchStart = true, atCyc, resumeCyc
	name, eq := "freq-switch", "EQ2"
	if simpleMode {
		name, eq = "mode-switch (simple)", "EQ4"
		o.tr.Instant(o.pid, tidMode, "visa", "checkpoint miss", missNs,
			obs.A("instance", o.idx), obs.A("sub_task", k))
	}
	o.tr.Complete(o.pid, tidMode, "visa", name, missNs, OvhdNs,
		obs.A("instance", o.idx), obs.A("sub_task", k), obs.A("recovery", eq),
		obs.A("ovhd_ns", OvhdNs), obs.A("drain_cycles", resumeCyc-atCyc),
		obs.A("from_mhz", o.fsMHz), obs.A("to_mhz", o.frMHz))
}

// forcedSimple records the degenerate-plan case: the first checkpoint is
// already unreachable, so the whole task runs in simple mode at the
// recovery point (the VISA-safe configuration).
func (o *instanceObs) forcedSimple() {
	if o == nil {
		return
	}
	o.switched, o.switchAt, o.switchStart, o.specNs = true, 0, 0, 0
	o.tr.Complete(o.pid, tidMode, "visa", "mode-switch (simple)", o.baseNs, OvhdNs,
		obs.A("instance", o.idx), obs.A("recovery", "EQ4"), obs.A("degenerate", true),
		obs.A("ovhd_ns", OvhdNs), obs.A("from_mhz", o.fsMHz), obs.A("to_mhz", o.frMHz))
}

// recovery records the post-switch execution span (simple mode or the
// recovery frequency) once the task's end cycle is known.
func (o *instanceObs) recovery(endCyc int64, simpleMode bool) {
	if o == nil || !o.switched {
		return
	}
	st, en := o.nsAt(o.switchStart), o.nsAt(endCyc)
	name := "recovery (f_rec)"
	if simpleMode {
		name = "recovery (simple mode)"
	}
	if en > st {
		o.tr.Complete(o.pid, tidMode, "visa", name, st, en-st,
			obs.A("instance", o.idx), obs.A("rec_mhz", o.frMHz))
	}
}

// instanceDone records the whole task-instance slice with its outcome.
func (o *instanceObs) instanceDone(timeNs, usedNs, deadlineNs float64, missed bool) {
	if o == nil {
		return
	}
	o.tr.Complete(o.pid, tidTask, "task", "task instance", o.baseNs, timeNs,
		obs.A("instance", o.idx), obs.A("missed", missed),
		obs.A("time_ns", timeNs), obs.A("used_ns", usedNs),
		obs.A("slack_ns", deadlineNs-usedNs))
	o.tr.Counter(o.pid, "deadline slack (ns)", o.baseNs+usedNs,
		obs.A("ns", deadlineNs-usedNs))
}

// obsLane returns the tracer process id for one processor's timeline and
// declares its lanes. The lane name carries the experiment label so that
// multi-experiment traces stay separated.
func obsLane(tr *obs.Tracer, label, bench, proc string) int {
	name := bench + "/" + proc
	if label != "" {
		name = label + " " + name
	}
	pid := tr.Pid(name)
	tr.ThreadName(pid, tidTask, "task instances")
	tr.ThreadName(pid, tidSub, "sub-tasks")
	tr.ThreadName(pid, tidMode, "visa events")
	return pid
}

// registerObs wires the processor's structures into the counter registry
// under prefix: caches, memory bus, and the active pipeline (complex cores
// include their simple-mode engine).
func (ps *procSim) registerObs(reg *obs.Registry, prefix string) {
	ps.ic.RegisterObs(reg, prefix+".icache")
	ps.dc.RegisterObs(reg, prefix+".dcache")
	ps.bus.RegisterObs(reg, prefix+".bus")
	if ps.cx != nil {
		ps.cx.RegisterObs(reg, prefix+".pipe")
	} else {
		ps.sp.RegisterObs(reg, prefix+".pipe")
	}
}

// jobInstruments holds one processor run's distributional instruments:
// deterministic fixed-boundary histograms and simulated-time timers for
// the quantities the scalar counters flatten away — the measurement style
// WCET over/under-estimation mining needs. All methods are nil-safe, so
// runTask's hot path carries no enabled-guards.
type jobInstruments struct {
	// margin is the watchdog margin (cycles remaining) observed at every
	// passed checkpoint — the distribution whose left tail predicts
	// recovery switches.
	margin *obs.Histogram
	// drain times the recovery switch's drain window in cycles (EQ 2/4's
	// variable overhead on top of the fixed OvhdNs term).
	drain *obs.Timer
	// latency times each task instance's engine execution in cycles.
	latency *obs.Timer
	// slack is the per-instance deadline slack in ns.
	slack *obs.Histogram
}

// newJobInstruments builds the instrument set under the run's registry
// prefix (so one registry can host many runs). Boundaries are fixed powers
// of two (deterministic, never rebalanced): cycle quantities span 1..2^26,
// slack spans 1..2^27 ns.
func newJobInstruments(prefix string) *jobInstruments {
	return &jobInstruments{
		margin:  obs.MustHistogram(prefix+".hist.watchdog_margin_cycles", obs.Exp2Boundaries(0, 26)),
		drain:   obs.MustTimer(prefix+".hist.switch_drain_cycles", obs.Exp2Boundaries(0, 16)),
		latency: obs.MustTimer(prefix+".hist.instance_cycles", obs.Exp2Boundaries(4, 26)),
		slack:   obs.MustHistogram(prefix+".hist.deadline_slack_ns", obs.Exp2Boundaries(0, 27)),
	}
}

// register wires the instruments into the counter registry; Snapshot then
// expands them alongside the scalar series.
func (ji *jobInstruments) register(reg *obs.Registry) {
	if ji == nil {
		return
	}
	for _, h := range ji.hists() {
		reg.Histogram(h)
	}
}

// hists lists the instruments' histograms in a fixed export order.
func (ji *jobInstruments) hists() []*obs.Histogram {
	if ji == nil {
		return nil
	}
	return []*obs.Histogram{ji.margin, ji.drain.H(), ji.latency.H(), ji.slack}
}

// checkpointMargin records a passed checkpoint's remaining watchdog budget.
func (ji *jobInstruments) checkpointMargin(cycles int64) {
	if ji == nil {
		return
	}
	ji.margin.ObserveInt(cycles)
}

// switchDrain records a recovery switch's drain window [atCyc, resumeCyc].
func (ji *jobInstruments) switchDrain(atCyc, resumeCyc int64) {
	if ji == nil {
		return
	}
	ji.drain.Observe(atCyc, resumeCyc)
}

// instanceDone records one instance's engine latency and deadline slack.
func (ji *jobInstruments) instanceDone(cycles int64, slackNs float64) {
	if ji == nil {
		return
	}
	ji.latency.Observe(0, cycles)
	ji.slack.Observe(slackNs)
}

// writeRecords streams the instruments through the metrics path as one
// kind:"hist" record each, tagged with the run's identity. Per-job record
// buffers make this deterministic for any worker count.
func (ji *jobInstruments) writeRecords(mw *obs.MetricsWriter, label, bench, proc string) {
	if ji == nil || mw == nil {
		return
	}
	for _, h := range ji.hists() {
		mw.Write(h.Record(
			obs.F("kind", "hist"),
			obs.F("label", label),
			obs.F("bench", bench),
			obs.F("proc", proc),
		))
	}
}
