package rt

import (
	"errors"
	"testing"

	"visa/internal/clab"
	"visa/internal/isa"
	"visa/internal/minic"
	"visa/internal/ooo"
)

// smtBackground is an endless non-real-time kernel for co-scheduling.
func smtBackground(t *testing.T) *isa.Program {
	t.Helper()
	prog, err := minic.Compile("bg.c", `
int sink;
void main() {
	int i;
	int acc = 0;
	for (i = 0; i < 5000; i = i + 1) {
		acc = acc + i * 13;
		acc = acc ^ (acc >> 5);
		sink = acc;
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSMTSafetyAndThroughput: co-scheduling a background thread must never
// cost the hard task its deadline, and must beat slack-only concurrency on
// background throughput.
func TestSMTSafetyAndThroughput(t *testing.T) {
	s, err := GetSetup(clab.ByName("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSMT(s, Config{Tight: true, Instances: 20}, smtBackground(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineViolations != 0 {
		t.Errorf("%d deadline violations under SMT (UNSAFE)", res.DeadlineViolations)
	}
	if res.BGInsts == 0 {
		t.Fatal("no background progress under SMT")
	}
	if res.RTOnlyBGInsts == 0 {
		t.Fatal("baseline made no background progress")
	}
	// SMT exploits both the slack and the spare issue bandwidth during the
	// hard task, so it must strictly beat slack-only scheduling.
	if res.BGInsts <= res.RTOnlyBGInsts {
		t.Errorf("SMT background work %d not above slack-only %d", res.BGInsts, res.RTOnlyBGInsts)
	}
	t.Logf("SMT bg insts = %d, slack-only = %d (%.2fx)",
		res.BGInsts, res.RTOnlyBGInsts, float64(res.BGInsts)/float64(res.RTOnlyBGInsts))
}

// TestSMTIdlesBackgroundOnMiss: injected mispredictions must engage simple
// mode, which idles the background thread, with all deadlines still met.
func TestSMTIdlesBackgroundOnMiss(t *testing.T) {
	s, err := GetSetup(clab.ByName("srt"))
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	res, err := RunSMT(s, Config{Tight: true, Instances: n, FlushTasks: n * 3 / 10}, smtBackground(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineViolations != 0 {
		t.Errorf("%d deadline violations under SMT + injection (UNSAFE)", res.DeadlineViolations)
	}
	if res.MissedTasks > 0 && res.IdledTasks != res.MissedTasks {
		t.Errorf("idled %d tasks but missed %d: simple mode must idle the background thread",
			res.IdledTasks, res.MissedTasks)
	}

	// Whether or not the injection found a miss at this scale, the idling
	// mechanism itself must hold: in simple mode, feeding a secondary
	// thread is a hardware protocol violation, reported as a structured
	// error the engine can attribute to the offending job.
	ps := newProcSim(s.Prog, ProcComplex, 1000)
	ps.cx.SwitchToSimple(0)
	d, err := newBGThread(smtBackground(t)).step()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ps.cx.FeedThread(1, &d)
	var idled *ooo.IdledThreadError
	if !errors.As(err, &idled) {
		t.Fatalf("feeding a background thread in simple mode: got %v, want IdledThreadError", err)
	}
	if idled.Tid != 1 {
		t.Errorf("IdledThreadError.Tid = %d, want 1", idled.Tid)
	}
}

// TestSMTThreadIsolation: per-thread register state must not leak between
// hardware threads in the timing model (thread 1's long-latency producers
// must not stall thread 0's consumers of the same architectural register).
func TestSMTThreadIsolation(t *testing.T) {
	s, err := GetSetup(clab.ByName("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	// Run the RT task alone, then with a background thread, on fresh cores:
	// the RT task's cycle count may grow (shared bandwidth) but must stay
	// well under 2x — catastrophic growth would indicate cross-thread
	// dependence leakage.
	alone := newProcSim(s.Prog, ProcComplex, 1000)
	aloneCycles, err := alone.profileNoReset()
	if err != nil {
		t.Fatal(err)
	}

	smt := newProcSim(s.Prog, ProcComplex, 1000)
	bg := newBGThread(smtBackground(t))
	var last int64
	for {
		if smt.cx.ThreadLastFetch(1) < smt.cx.ThreadLastFetch(0) {
			d, err := bg.step()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := smt.cx.FeedThread(1, &d); err != nil {
				t.Fatal(err)
			}
			continue
		}
		d, ok, err := smt.machine.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		last, err = smt.cx.FeedThread(0, &d)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last > 2*aloneCycles {
		t.Errorf("RT task took %d cycles with SMT vs %d alone: cross-thread interference too high",
			last, aloneCycles)
	}
	if last <= aloneCycles {
		t.Errorf("RT task with SMT (%d) not slower than alone (%d): resource sharing unmodelled?",
			last, aloneCycles)
	}
}
