package rt

import (
	"testing"

	"visa/internal/core"
)

// TestWatchdogBoundaries pins the watchdog's off-by-one behaviour at the
// exact cycles the recovery protocol depends on: the counter reaching zero
// *is* the exception (§2.2), so a checkpoint met on the last budgeted cycle
// must not fire, and one missed by a single cycle must.
func TestWatchdogBoundaries(t *testing.T) {
	cases := []struct {
		name string
		// drive replays a scenario and returns the watchdog to inspect.
		drive   func() *core.Watchdog
		expired bool // Expired at the scenario's probe cycle
		fired   bool // latched Fired afterwards
	}{
		{
			name: "hit on last budget cycle",
			// 100 cycles of budget, probe one cycle before expiry: the
			// deadline is still in the future, no exception.
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(100)
				if wd.Expired(99) {
					panic("fired early")
				}
				return &wd
			},
			expired: false,
			fired:   false,
		},
		{
			name: "missed by exactly one cycle",
			// The counter reaches zero at cycle 100: probing there is the
			// one-cycle miss and must raise the exception.
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(100)
				wd.Expired(100)
				return &wd
			},
			expired: true,
			fired:   true,
		},
		{
			name: "boundary add defers expiry",
			// A checkpoint passed at cycle 90 grants 60 more cycles on top
			// of the 10 still banked, moving expiry to 160: cycle 159 is
			// safe, 160 fires.
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(100)
				wd.Add(90, 60)
				if wd.Expired(159) {
					panic("fired before the extended deadline")
				}
				wd.Expired(160)
				return &wd
			},
			expired: true,
			fired:   true,
		},
		{
			name: "back-to-back misses keep firing",
			// After a first miss the exception condition persists on every
			// later probe (the harness masks it with Disarm, not the clock).
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(50)
				wd.Expired(50)
				wd.Expired(51)
				wd.Expired(52)
				return &wd
			},
			expired: true,
			fired:   true,
		},
		{
			name: "disarm masks a pending miss",
			// Disarm after the first miss (the recovery switch): further
			// probes must not report expiry, but the Fired latch survives
			// as the record that recovery happened.
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(50)
				wd.Expired(50)
				wd.Disarm()
				if wd.Expired(51) {
					panic("expired while disarmed")
				}
				return &wd
			},
			expired: false,
			fired:   true,
		},
		{
			name: "zero budget never arms",
			// A degenerate plan (WatchdogInit <= 0) must not arm at all —
			// the harness handles it by forcing simple mode instead.
			drive: func() *core.Watchdog {
				var wd core.Watchdog
				wd.Arm(0)
				return &wd
			},
			expired: false,
			fired:   false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wd := c.drive()
			// Re-probe at a far-future cycle: expired scenarios stay
			// expired (if still armed), un-expired ones are judged at
			// their own probe cycle above.
			if got := wd.Fired; got != c.fired {
				t.Errorf("Fired = %v, want %v", got, c.fired)
			}
			if c.expired && wd.Armed() && !wd.Expired(wd.ExpiryCycle()) {
				t.Error("expired watchdog no longer reports expiry")
			}
			if !c.expired && wd.Armed() && wd.Expired(wd.ExpiryCycle()-1) {
				t.Error("watchdog fired before its expiry cycle")
			}
		})
	}
}

// TestWatchdogRemainingAccounting: Remaining must account the autonomous
// per-cycle decrement between probes (the §5.1 MMIO read path).
func TestWatchdogRemainingAccounting(t *testing.T) {
	var wd core.Watchdog
	wd.Arm(1000)
	if got := wd.Remaining(250); got != 750 {
		t.Errorf("Remaining(250) = %d, want 750", got)
	}
	wd.Add(250, 500) // boundary at 250 grants 500 more
	if got := wd.Remaining(250); got != 1250 {
		t.Errorf("Remaining after Add = %d, want 1250", got)
	}
	if got := wd.ExpiryCycle(); got != 1500 {
		t.Errorf("ExpiryCycle = %d, want 1500", got)
	}
}
