package rt

import (
	"crypto/sha256"
	"encoding/hex"
)

// ReportHash is the canonical content address of a report text: the
// lowercase-hex SHA-256 of its bytes. Because report text is a
// deterministic function of the plan (byte-identical for any worker
// count, on any daemon), the hash is a portable completion witness: a
// service journal records it alongside the terminal status, and recovery
// verifies a rehydrated report against it — two runs of the same spec
// agree on the hash or one of them is wrong.
func ReportHash(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}
