package rt

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"visa/internal/clab"
	"visa/internal/obs"
)

// runAllPlans regenerates the full evaluation (`experiments -all -n 10`
// equivalent) on the given worker count, returning the concatenated report
// text and the concatenated metrics streams (one per plan, as cmd/
// experiments writes one file per plan).
func runAllPlans(t *testing.T, workers, instances int) (string, string) {
	t.Helper()
	all := clab.All()
	var text, metrics strings.Builder
	for _, plan := range []*Plan{
		Table3Plan(all),
		Figure2Plan(all, instances),
		Figure3Plan(all, instances),
		Figure4Plan(all, instances),
	} {
		var buf bytes.Buffer
		sink := &obs.Sink{Metrics: obs.NewMetricsWriter(&buf, obs.FormatJSONL)}
		rep, err := (&Engine{Workers: workers, Sink: sink}).Run(plan)
		if err != nil {
			t.Fatalf("plan %s (j=%d): %v", plan.Name, workers, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("plan %s (j=%d): job failed: %v", plan.Name, workers, err)
		}
		if err := sink.Metrics.Close(); err != nil {
			t.Fatalf("plan %s (j=%d): metrics: %v", plan.Name, workers, err)
		}
		text.WriteString(rep.Text)
		metrics.Write(buf.Bytes())
	}
	return text.String(), metrics.String()
}

// TestParallelMatchesSerial is the engine's determinism guarantee: the full
// evaluation run on 8 workers must produce byte-identical report text and
// byte-identical JSONL metrics to a serial run (the committed form of the
// `experiments -all -n 10 -j 8` vs `-j 1` acceptance check).
func TestParallelMatchesSerial(t *testing.T) {
	const n = 10
	serialText, serialMetrics := runAllPlans(t, 1, n)
	parallelText, parallelMetrics := runAllPlans(t, 8, n)
	if serialText != parallelText {
		t.Errorf("report text differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
			serialText, parallelText)
	}
	if serialMetrics != parallelMetrics {
		t.Error("JSONL metrics differ between -j 1 and -j 8")
	}
	if len(serialText) == 0 || len(serialMetrics) == 0 {
		t.Error("empty output from full evaluation run")
	}
}

// TestEngineDefaultWorkers: Workers <= 0 (the cmd default is NumCPU, but 0
// must also work) still runs every job and renders.
func TestEngineDefaultWorkers(t *testing.T) {
	rep, err := (&Engine{}).Run(Figure3Plan([]*clab.Benchmark{clab.ByName("cnt")}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.SavingsRows()) != 2 {
		t.Errorf("%d rows, want 2", len(rep.SavingsRows()))
	}
	if !strings.Contains(rep.Text, "FIGURE 3") {
		t.Errorf("report text missing header:\n%s", rep.Text)
	}
}

// TestEngineSharedSinkSerializes: a Tracer or Registry on the engine sink
// is shared mutable state, so the engine must fall back to serial
// execution — and still deliver trace events and counters.
func TestEngineSharedSinkSerializes(t *testing.T) {
	sink := &obs.Sink{Trace: obs.NewTracer(), Registry: obs.NewRegistry()}
	rep, err := (&Engine{Workers: 8, Sink: sink}).Run(
		Figure4Plan([]*clab.Benchmark{clab.ByName("cnt")}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.SavingsRows()) != 4 {
		t.Errorf("%d rows, want 4", len(rep.SavingsRows()))
	}
	if sink.Trace.Len() == 0 {
		t.Error("no trace events from serialized instrumented run")
	}
	if sink.Registry.Len() == 0 {
		t.Error("no counters registered from serialized instrumented run")
	}
}

// TestConfigValidate covers each rejection Validate promises, plus the
// valid shapes closest to each boundary.
func TestConfigValidate(t *testing.T) {
	metricsSink := &obs.Sink{Metrics: obs.NewRecordBuffer()}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"negative instances", Config{Instances: -1}, false},
		{"negative flush tasks", Config{FlushTasks: -1}, false},
		{"flush exceeds instances", Config{Instances: 10, FlushTasks: 11}, false},
		{"flush at instances", Config{Instances: 10, FlushTasks: 10}, true},
		{"flush exceeds default instances", Config{FlushTasks: Instances + 1}, false},
		{"freq advantage below one", Config{FreqAdvantage: 0.5}, false},
		{"freq advantage unset", Config{FreqAdvantage: 0}, true},
		{"freq advantage one", Config{FreqAdvantage: 1}, true},
		{"metrics without label", Config{Obs: metricsSink}, false},
		{"metrics with label", Config{Obs: metricsSink, Label: "x"}, true},
		{"label optional without metrics", Config{Obs: &obs.Sink{}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestRunEntryPointsValidate: every run entry point must reject an invalid
// config up front instead of silently misbehaving.
func TestRunEntryPointsValidate(t *testing.T) {
	bad := Config{Instances: -1}
	s, err := GetSetup(clab.ByName("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProcessor(s, ProcComplex, bad); err == nil {
		t.Error("RunProcessor accepted a negative instance count")
	}
	if _, err := RunComparison(clab.ByName("cnt"), bad); err == nil {
		t.Error("RunComparison accepted a negative instance count")
	}
	if _, err := RunSMT(s, bad, s.Prog); err == nil {
		t.Error("RunSMT accepted a negative instance count")
	}
	plan := &Plan{Name: "bad", Jobs: []Job{{Bench: clab.ByName("cnt"), Config: bad}}}
	if _, err := (&Engine{Workers: 2}).Run(plan); err == nil {
		t.Error("Engine.Run accepted a plan with a negative instance count")
	} else if !strings.Contains(err.Error(), "plan bad job 0 (cnt)") {
		t.Errorf("engine validation error does not locate the job: %v", err)
	}
}

// TestGetSetupConcurrent hits GetSetup from 8 goroutines on a benchmark
// whose cache entry has been cleared: under -race this proves the
// memoization is data-race free, and all callers must observe the same
// Setup pointer (built exactly once).
func TestGetSetupConcurrent(t *testing.T) {
	setupCache.Delete("mm")
	const goroutines = 8
	ptrs := make([]*Setup, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ptrs[g], errs[g] = GetSetup(clab.ByName("mm"))
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d observed a different Setup: build ran more than once", g)
		}
	}
}

// TestBoostedTableConcurrent: the per-setup boosted-table cache must also
// be safe under concurrent callers (Figure 3 jobs on the same benchmark).
func TestBoostedTableConcurrent(t *testing.T) {
	s, err := GetSetup(clab.ByName("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = s.BoostedTable(1.5)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestProcStringAndParse(t *testing.T) {
	if ProcComplex.String() != "complex" || ProcSimpleFixed.String() != "simple-fixed" {
		t.Errorf("Proc strings wrong: %q / %q", ProcComplex, ProcSimpleFixed)
	}
	for in, want := range map[string]Proc{
		"complex": ProcComplex, "simple": ProcSimpleFixed, "simple-fixed": ProcSimpleFixed,
	} {
		got, err := ParseProc(in)
		if err != nil || got != want {
			t.Errorf("ParseProc(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProc("quantum"); err == nil {
		t.Error("ParseProc accepted an unknown processor")
	}
}
