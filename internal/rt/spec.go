package rt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"visa/internal/clab"
	"visa/internal/fault"
)

// This file is the wire form of the Plan/Job API: versioned,
// JSON-serializable specs with no function values, so a plan can cross a
// network boundary (cmd/visad), live in a file (experiments -plan), or be
// replayed byte-for-byte later. The in-process types (Plan, Job, Config)
// stay the execution API; PlanSpec/JobSpec/ConfigSpec are their exact
// serializable mirrors plus Validate() and materializers.
//
// Encoding is canonical: struct-driven field order, no maps, no floats that
// JSON cannot carry — so encode(decode(x)) == x for any encoded spec x, a
// property the service relies on for caching and the fuzz tests pin down.

// SpecVersion is the current PlanSpec/JobSpec schema version. Decoders
// reject other versions rather than guessing at field semantics.
const SpecVersion = 1

// jobKindNames spells JobKind values as specs carry them.
var jobKindNames = map[JobKind]string{
	JobComparison: "comparison",
	JobTable3:     "table3",
	JobSafety:     "safety",
}

func (k JobKind) String() string {
	if s, ok := jobKindNames[k]; ok {
		return s
	}
	return "invalid"
}

// ParseJobKind maps a spec spelling to a JobKind.
func ParseJobKind(s string) (JobKind, error) {
	for k := JobComparison; k <= JobSafety; k++ {
		if s == jobKindNames[k] {
			return k, nil
		}
	}
	return 0, invalidf("unknown job kind %q (want comparison, table3, or safety)", s)
}

// ConfigSpec is the serializable mirror of Config: every axis a remote
// client may set, none of the in-process machinery (no Obs sink — the
// engine owns instrumentation). The zero value is the default run.
type ConfigSpec struct {
	// Policy is the PET estimation policy: "last-n" (default when empty)
	// or "histogram".
	Policy         string  `json:"policy,omitempty"`
	Tight          bool    `json:"tight,omitempty"`
	Standby        bool    `json:"standby,omitempty"`
	FreqAdvantage  float64 `json:"freq_advantage,omitempty"`
	FlushTasks     int     `json:"flush_tasks,omitempty"`
	Instances      int     `json:"instances,omitempty"`
	HistogramMiss  float64 `json:"histogram_miss,omitempty"`
	VaryInputSeeds bool    `json:"vary_input_seeds,omitempty"`
	// Fault is a fault plan in fault.ParseSpec form
	// ("kind:rate[:cycles[:seed]]"); empty injects nothing.
	Fault       string `json:"fault,omitempty"`
	CycleBudget int64  `json:"cycle_budget,omitempty"`
	Label       string `json:"label,omitempty"`
}

// Config materializes the spec into an executable Config (Obs unset — the
// engine injects per-job sinks). Errors wrap ErrInvalidSpec.
func (c ConfigSpec) Config() (Config, error) {
	out := Config{
		Tight:          c.Tight,
		Standby:        c.Standby,
		FreqAdvantage:  c.FreqAdvantage,
		FlushTasks:     c.FlushTasks,
		Instances:      c.Instances,
		HistogramMiss:  c.HistogramMiss,
		VaryInputSeeds: c.VaryInputSeeds,
		CycleBudget:    c.CycleBudget,
		Label:          c.Label,
	}
	if c.Policy != "" {
		p, err := ParsePETPolicy(c.Policy)
		if err != nil {
			return Config{}, err
		}
		out.Policy = p
	}
	if c.Fault != "" {
		spec, err := fault.ParseSpec(c.Fault)
		if err != nil {
			return Config{}, invalidf("%v", err)
		}
		out.Fault = &spec
	}
	if err := out.Validate(); err != nil {
		return Config{}, err
	}
	return out, nil
}

// Validate rejects specs that cannot materialize. Errors wrap
// ErrInvalidSpec.
func (c ConfigSpec) Validate() error {
	_, err := c.Config()
	return err
}

// ConfigSpecOf mirrors an in-process Config back into its wire form. The
// Obs sink does not serialize; the deprecated Histogram flag normalizes
// into the policy name.
func ConfigSpecOf(c Config) ConfigSpec {
	out := ConfigSpec{
		Tight:          c.Tight,
		Standby:        c.Standby,
		FreqAdvantage:  c.FreqAdvantage,
		FlushTasks:     c.FlushTasks,
		Instances:      c.Instances,
		HistogramMiss:  c.HistogramMiss,
		VaryInputSeeds: c.VaryInputSeeds,
		CycleBudget:    c.CycleBudget,
		Label:          c.Label,
	}
	if c.policy() != PETLastN {
		out.Policy = c.policy().String()
	}
	if c.Fault != nil {
		out.Fault = c.Fault.String()
	}
	return out
}

// JobSpec is one serializable unit of work: a benchmark, a job kind, and a
// config. It carries no function values, so it crosses process boundaries
// and round-trips exactly through JSON.
type JobSpec struct {
	Version int        `json:"version"`
	Bench   string     `json:"bench"`
	Kind    string     `json:"kind,omitempty"` // "" means comparison
	Config  ConfigSpec `json:"config"`
}

// Validate rejects malformed job specs. Errors wrap ErrInvalidSpec.
func (j JobSpec) Validate() error {
	_, err := j.Job()
	return err
}

// Job materializes the spec, resolving the benchmark by name. Errors wrap
// ErrInvalidSpec.
func (j JobSpec) Job() (Job, error) {
	if j.Version != SpecVersion {
		return Job{}, invalidf("job spec version %d (this build speaks %d)", j.Version, SpecVersion)
	}
	b := clab.ByName(j.Bench)
	if b == nil {
		return Job{}, invalidf("unknown benchmark %q (have %s)",
			j.Bench, strings.Join(clab.Names(), " "))
	}
	kind := JobComparison
	if j.Kind != "" {
		var err error
		if kind, err = ParseJobKind(j.Kind); err != nil {
			return Job{}, err
		}
	}
	cfg, err := j.Config.Config()
	if err != nil {
		return Job{}, err
	}
	if kind == JobSafety && cfg.Fault == nil {
		return Job{}, invalidf("safety job without a fault spec")
	}
	return Job{Bench: b, Kind: kind, Config: cfg}, nil
}

// Encode renders the spec in its canonical JSON form.
func (j JobSpec) Encode() ([]byte, error) { return json.Marshal(j) }

// DecodeJobSpec parses a canonical JobSpec encoding. Unknown fields are
// errors (the schema is versioned — silence would mask typos). Decoding
// does not validate; callers that execute the spec do.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	var j JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return JobSpec{}, invalidf("job spec: %v", err)
	}
	return j, nil
}

// Plan kinds a PlanSpec can name. The figure/table kinds invoke the paper's
// plan constructors; "safety" is the fault campaign; "custom" carries an
// explicit job list.
const (
	PlanTable3 = "table3"
	PlanFig2   = "fig2"
	PlanFig3   = "fig3"
	PlanFig4   = "fig4"
	PlanSafety = "safety"
	PlanCustom = "custom"
)

// PlanSpec is a serializable experiment plan: a kind plus the knobs that
// kind consumes. It is the unit of submission to the visad service and the
// file format of `experiments -plan`.
type PlanSpec struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`

	// Name labels custom plans (ignored for the named kinds, which carry
	// their own).
	Name string `json:"name,omitempty"`

	// Benches restricts the named kinds to these benchmarks (empty = all).
	Benches []string `json:"benches,omitempty"`

	// Instances overrides each job's task-instance count (fig2-4, safety).
	Instances int `json:"instances,omitempty"`

	// Seed is the safety campaign's base seed.
	Seed uint64 `json:"seed,omitempty"`

	// Faults/Rates restrict the safety campaign's sweep (empty = defaults).
	Faults []string `json:"faults,omitempty"`
	Rates  []int    `json:"rates,omitempty"`

	// Jobs is the explicit job list of a "custom" plan.
	Jobs []JobSpec `json:"jobs,omitempty"`
}

// Encode renders the spec in its canonical JSON form.
func (p PlanSpec) Encode() ([]byte, error) { return json.Marshal(p) }

// DecodePlanSpec parses a canonical PlanSpec encoding; unknown fields are
// errors. Decoding does not validate; callers that execute the spec do.
func DecodePlanSpec(data []byte) (PlanSpec, error) {
	var p PlanSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return PlanSpec{}, invalidf("plan spec: %v", err)
	}
	return p, nil
}

// Validate rejects malformed plan specs. Errors wrap ErrInvalidSpec.
func (p PlanSpec) Validate() error {
	_, err := p.Plan()
	return err
}

// Plan materializes the spec into an executable Plan via the paper's plan
// constructors (named kinds) or an explicit job list ("custom"). Errors
// wrap ErrInvalidSpec.
func (p PlanSpec) Plan() (*Plan, error) {
	if p.Version != SpecVersion {
		return nil, invalidf("plan spec version %d (this build speaks %d)", p.Version, SpecVersion)
	}
	if p.Instances < 0 {
		return nil, invalidf("plan spec: negative instances (%d)", p.Instances)
	}
	if p.Kind != PlanCustom && len(p.Jobs) > 0 {
		return nil, invalidf("plan spec: kind %q does not take an explicit job list (use kind custom)", p.Kind)
	}
	benches, err := p.benches()
	if err != nil {
		return nil, err
	}
	switch p.Kind {
	case PlanTable3:
		return Table3Plan(benches), nil
	case PlanFig2:
		return Figure2Plan(benches, p.Instances), nil
	case PlanFig3:
		return Figure3Plan(benches, p.Instances), nil
	case PlanFig4:
		return Figure4Plan(benches, p.Instances), nil
	case PlanSafety:
		c := SafetyCampaign{Seed: p.Seed, Instances: p.Instances}
		for _, name := range p.Faults {
			k, err := fault.ParseKind(name)
			if err != nil {
				return nil, invalidf("plan spec: %v", err)
			}
			c.Kinds = append(c.Kinds, k)
		}
		for _, r := range p.Rates {
			if r < 0 || r > fault.RateScale {
				return nil, invalidf("plan spec: rate %d out of range [0,%d]", r, fault.RateScale)
			}
			c.Rates = append(c.Rates, r)
		}
		return SafetyCampaignPlan(benches, c), nil
	case PlanCustom:
		if p.Name == "" {
			return nil, invalidf("plan spec: custom plan without a name")
		}
		if len(p.Jobs) == 0 {
			return nil, invalidf("plan spec: custom plan %q without jobs", p.Name)
		}
		jobs := make([]Job, len(p.Jobs))
		for i, js := range p.Jobs {
			j, err := js.Job()
			if err != nil {
				return nil, fmt.Errorf("job %d: %w", i, err)
			}
			jobs[i] = j
		}
		return &Plan{Name: p.Name, Jobs: jobs, Render: renderGeneric}, nil
	default:
		return nil, invalidf("plan spec: unknown kind %q (want %s, %s, %s, %s, %s, or %s)",
			p.Kind, PlanTable3, PlanFig2, PlanFig3, PlanFig4, PlanSafety, PlanCustom)
	}
}

// benches resolves the spec's benchmark list (empty = all).
func (p PlanSpec) benches() ([]*clab.Benchmark, error) {
	if len(p.Benches) == 0 {
		return clab.All(), nil
	}
	out := make([]*clab.Benchmark, len(p.Benches))
	for i, name := range p.Benches {
		b := clab.ByName(name)
		if b == nil {
			return nil, invalidf("unknown benchmark %q (have %s)",
				name, strings.Join(clab.Names(), " "))
		}
		out[i] = b
	}
	return out, nil
}

// renderGeneric renders a custom plan's report: each populated row family
// in plan order. Like every renderer it derives output from the rows only,
// so the text is identical however the plan executed.
func renderGeneric(r *Report) string {
	var b strings.Builder
	if rows := r.Table3Rows(); len(rows) > 0 {
		b.WriteString(FormatTable3(rows))
	}
	if rows := r.SavingsRows(); len(rows) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "POWER COMPARISON (T=tight, L=loose deadline).\n\n")
		fmt.Fprintf(&b, "%-8s %3s %10s %12s %12s %8s\n",
			"bench", "dl", "savings", "simple MHz", "complex MHz", "missed")
		for _, row := range rows {
			tag := "L"
			if row.Tight {
				tag = "T"
			}
			fmt.Fprintf(&b, "%-8s %3s %9.1f%% %12d %12d %8d\n",
				row.Name, tag, row.Savings*100,
				row.Simple.FinalSpecMHz, row.Complex.FinalSpecMHz,
				row.Complex.MissedTasks)
		}
	}
	if rows := r.SafetyRows(); len(rows) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatSafetyRows(rows))
	}
	return b.String()
}
