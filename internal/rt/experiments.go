package rt

import (
	"fmt"
	"strings"

	"visa/internal/clab"
	"visa/internal/obs"
)

// Table3Row reproduces one column of the paper's Table 3.
type Table3Row struct {
	Name         string
	DynInsts     int64
	TightNs      float64
	LooseNs      float64
	SubTasks     int
	WCETUs       float64 // WCET at 1 GHz
	SimpleUs     float64 // actual, simple-fixed at 1 GHz
	ComplexUs    float64 // actual, complex at 1 GHz
	WCETOverSim  float64
	SimOverCmplx float64
}

// table3Row computes one benchmark's static-analysis and actual-time
// summary (paper Table 3 / §6.1). When sink carries a metrics writer, the
// row is also emitted as a kind:"table3" record, followed by one
// kind:"table3_subtask" record per sub-task with its WCET bound and
// D-cache pad — the machine-readable form of the printed table.
func table3Row(b *clab.Benchmark, sink *obs.Sink) (Table3Row, error) {
	s, err := GetSetup(b)
	if err != nil {
		return Table3Row{}, err
	}
	wcetUs := s.Table.TotalTimeNs(len(s.Table.Points)-1) / 1000
	simUs := float64(s.SteadySimpleCycles) / 1000
	cxUs := float64(s.SteadyComplexCycles) / 1000
	row := Table3Row{
		Name:         b.Name,
		DynInsts:     s.DynInsts,
		TightNs:      s.Deadline(true),
		LooseNs:      s.Deadline(false),
		SubTasks:     b.SubTasks,
		WCETUs:       wcetUs,
		SimpleUs:     simUs,
		ComplexUs:    cxUs,
		WCETOverSim:  wcetUs / simUs,
		SimOverCmplx: simUs / cxUs,
	}
	if mw := sink.M(); mw != nil {
		mw.Write(obs.Record{
			obs.F("kind", "table3"),
			obs.F("bench", row.Name),
			obs.F("dyn_insts", row.DynInsts),
			obs.F("tight_ns", row.TightNs),
			obs.F("loose_ns", row.LooseNs),
			obs.F("sub_tasks", row.SubTasks),
			obs.F("wcet_us", row.WCETUs),
			obs.F("simple_us", row.SimpleUs),
			obs.F("complex_us", row.ComplexUs),
			obs.F("wcet_over_simple", row.WCETOverSim),
			obs.F("simple_over_complex", row.SimOverCmplx),
		})
		last := len(s.Table.Points) - 1
		for k := 0; k < s.Table.NumSubTasks(); k++ {
			mw.Write(obs.Record{
				obs.F("kind", "table3_subtask"),
				obs.F("bench", row.Name),
				obs.F("sub_task", k),
				obs.F("wcet_cycles_1ghz", s.Table.Cycles[last][k]),
				obs.F("dcache_pad", s.DPad[k]),
			})
		}
	}
	return row, nil
}

// Table3Plan builds the Table 3 plan: one JobTable3 per benchmark.
func Table3Plan(benches []*clab.Benchmark) *Plan {
	jobs := make([]Job, len(benches))
	for i, b := range benches {
		jobs[i] = Job{Bench: b, Kind: JobTable3, Config: NewConfig(WithLabel("table3"))}
	}
	return &Plan{
		Name: "table3",
		Jobs: jobs,
		Render: func(r *Report) string {
			return FormatTable3(r.Table3Rows())
		},
	}
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 3. C-lab benchmarks (scaled inputs).\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10s", r.Name)
	}
	b.WriteByte('\n')
	line := func(label string, f func(Table3Row) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%10s", f(r))
		}
		b.WriteByte('\n')
	}
	line("# dyn. inst. 1 task", func(r Table3Row) string { return fmt.Sprintf("%.1fK", float64(r.DynInsts)/1000) })
	line("tight dead. (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.TightNs/1000) })
	line("loose dead. (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.LooseNs/1000) })
	line("# of sub-tasks", func(r Table3Row) string { return fmt.Sprintf("%d", r.SubTasks) })
	line("WCET @1GHz (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.WCETUs) })
	line("actual: simple (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.SimpleUs) })
	line("actual: complex (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.ComplexUs) })
	line("WCET/simple", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.WCETOverSim) })
	line("simple/complex", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.SimOverCmplx) })
	return b.String()
}

// SavingsRow is one benchmark's power comparison for Figures 2-4.
type SavingsRow struct {
	Name    string
	Tight   bool
	Complex *ProcResult
	Simple  *ProcResult
	Savings float64 // 1 - complex/simple average power
}

// RunComparison runs both processors under cfg and returns the power
// comparison. FlushTasks only perturbs the complex processor (Figure 4
// injects mispredictions into the VISA-compliant core; simple-fixed is the
// unperturbed baseline).
func RunComparison(b *clab.Benchmark, cfg Config) (*SavingsRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := GetSetup(b)
	if err != nil {
		return nil, err
	}
	cx, err := RunProcessor(s, ProcComplex, cfg)
	if err != nil {
		return nil, err
	}
	simpleCfg := cfg
	simpleCfg.FlushTasks = 0
	sf, err := RunProcessor(s, ProcSimpleFixed, simpleCfg)
	if err != nil {
		return nil, err
	}
	if cx.DeadlineViolations > 0 || sf.DeadlineViolations > 0 {
		return nil, errf("rt: %s: DEADLINE VIOLATED (complex=%d simple=%d) — safety property broken",
			b.Name, cx.DeadlineViolations, sf.DeadlineViolations)
	}
	row := &SavingsRow{
		Name:    b.Name,
		Tight:   cfg.Tight,
		Complex: cx,
		Simple:  sf,
		Savings: Savings(cx, sf),
	}
	if mw := cfg.Obs.M(); mw != nil {
		mw.Write(obs.Record{
			obs.F("kind", "summary"),
			obs.F("label", cfg.Label),
			obs.F("bench", b.Name),
			obs.F("tight", cfg.Tight),
			obs.F("standby", cfg.Standby),
			obs.F("freq_advantage", cfg.FreqAdvantage),
			obs.F("flush_tasks", cfg.FlushTasks),
			obs.F("savings", row.Savings),
			obs.F("complex_avg_power", cx.AvgPower),
			obs.F("simple_avg_power", sf.AvgPower),
			obs.F("complex_energy", cx.Energy),
			obs.F("simple_energy", sf.Energy),
			obs.F("complex_missed", cx.MissedTasks),
			obs.F("simple_missed", sf.MissedTasks),
			obs.F("complex_spec_mhz", cx.FinalSpecMHz),
			obs.F("complex_rec_mhz", cx.FinalRecMHz),
			obs.F("simple_spec_mhz", sf.FinalSpecMHz),
		})
	}
	return row, nil
}

// Figure2Plan builds the headline experiment: power savings of the
// VISA-compliant complex processor relative to simple-fixed, tight and
// loose deadlines, with and without 10% standby power. Per benchmark the
// jobs run in the order T, T+stby, L, L+stby; the renderer consumes them
// pairwise.
func Figure2Plan(benches []*clab.Benchmark, instances int) *Plan {
	var jobs []Job
	for _, b := range benches {
		for _, tight := range []bool{true, false} {
			tag := "T"
			if !tight {
				tag = "L"
			}
			jobs = append(jobs,
				Job{Bench: b, Config: NewConfig(
					WithTightDeadline(tight), WithInstances(instances),
					WithLabel("fig2/"+tag))},
				Job{Bench: b, Config: NewConfig(
					WithTightDeadline(tight), WithInstances(instances), WithStandby(),
					WithLabel("fig2/"+tag+"+stby"))})
		}
	}
	return &Plan{Name: "fig2", Jobs: jobs, Render: renderFigure2}
}

func renderFigure2(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 2. Power savings of the VISA-compliant complex processor\n")
	fmt.Fprintf(&b, "relative to simple-fixed (T=tight, L=loose deadline).\n\n")
	fmt.Fprintf(&b, "%-8s %6s %14s %14s %12s %12s\n",
		"bench", "dl", "savings", "savings+stby", "simple MHz", "complex MHz")
	rows := r.SavingsRows()
	for i := 0; i+1 < len(rows); i += 2 {
		row, sb := rows[i], rows[i+1]
		tag := "T"
		if !row.Tight {
			tag = "L"
		}
		fmt.Fprintf(&b, "%-8s %6s %13.1f%% %13.1f%% %12d %12d\n",
			row.Name, tag, row.Savings*100, sb.Savings*100,
			row.Simple.FinalSpecMHz, row.Complex.FinalSpecMHz)
	}
	return b.String()
}

// Figure3Plan grants simple-fixed 1.5x the frequency at equal voltage
// (tight deadline). Per benchmark: base then +stby.
func Figure3Plan(benches []*clab.Benchmark, instances int) *Plan {
	var jobs []Job
	for _, b := range benches {
		jobs = append(jobs,
			Job{Bench: b, Config: NewConfig(
				WithTightDeadline(true), WithFreqAdvantage(1.5), WithInstances(instances),
				WithLabel("fig3"))},
			Job{Bench: b, Config: NewConfig(
				WithTightDeadline(true), WithFreqAdvantage(1.5), WithInstances(instances),
				WithStandby(), WithLabel("fig3+stby"))})
	}
	return &Plan{Name: "fig3", Jobs: jobs, Render: renderFigure3}
}

func renderFigure3(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 3. Power savings with simple-fixed granted 1.5x frequency\n")
	fmt.Fprintf(&b, "at equal voltage (tight deadline).\n\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %12s\n",
		"bench", "savings", "savings+stby", "simple MHz", "complex MHz")
	rows := r.SavingsRows()
	for i := 0; i+1 < len(rows); i += 2 {
		row, sb := rows[i], rows[i+1]
		fmt.Fprintf(&b, "%-8s %13.1f%% %13.1f%% %12d %12d\n",
			row.Name, row.Savings*100, sb.Savings*100,
			row.Simple.FinalSpecMHz, row.Complex.FinalSpecMHz)
	}
	return b.String()
}

// figure4Pcts are the misprediction-injection rates of Figure 4, in job
// order per benchmark.
var figure4Pcts = []int{0, 10, 20, 30}

// Figure4Plan injects mispredictions by flushing caches and predictors at
// the start of 10%, 20%, and 30% of tasks (tight deadline); every deadline
// must still be met. Per benchmark: one job per rate, 0% first.
func Figure4Plan(benches []*clab.Benchmark, instances int) *Plan {
	n := instances
	if n == 0 {
		n = Instances
	}
	var jobs []Job
	for _, b := range benches {
		for _, pct := range figure4Pcts {
			jobs = append(jobs, Job{Bench: b, Config: NewConfig(
				WithTightDeadline(true), WithInstances(n), WithFlushTasks(n*pct/100),
				WithLabel(fmt.Sprintf("fig4/%d%%", pct)))})
		}
	}
	return &Plan{Name: "fig4", Jobs: jobs, Render: renderFigure4}
}

func renderFigure4(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. Power savings with injected mispredictions\n")
	fmt.Fprintf(&b, "(caches+predictors flushed at the start of 10%%/20%%/30%% of tasks).\n\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %14s\n",
		"bench", "0%", "10%", "20%", "30%", "missed@30%")
	rows := r.SavingsRows()
	k := len(figure4Pcts)
	for i := 0; i+k-1 < len(rows); i += k {
		fmt.Fprintf(&b, "%-8s ", rows[i].Name)
		for j := 0; j < k; j++ {
			fmt.Fprintf(&b, "%9.1f%% ", rows[i+j].Savings*100)
		}
		fmt.Fprintf(&b, "%14d\n", rows[i+k-1].Complex.MissedTasks)
	}
	fmt.Fprintf(&b, "\nAll deadlines met in every run (checked).\n")
	return b.String()
}
