package rt

import (
	"fmt"
	"strings"

	"visa/internal/clab"
	"visa/internal/obs"
)

// Table3Row reproduces one column of the paper's Table 3.
type Table3Row struct {
	Name         string
	DynInsts     int64
	TightNs      float64
	LooseNs      float64
	SubTasks     int
	WCETUs       float64 // WCET at 1 GHz
	SimpleUs     float64 // actual, simple-fixed at 1 GHz
	ComplexUs    float64 // actual, complex at 1 GHz
	WCETOverSim  float64
	SimOverCmplx float64
}

// Table3 computes the per-benchmark static-analysis and actual-time summary
// (paper Table 3 / §6.1). When sink carries a metrics writer, each row is
// also emitted as a kind:"table3" record, followed by one
// kind:"table3_subtask" record per sub-task with its WCET bound and D-cache
// pad — the machine-readable form of the printed table.
func Table3(benches []*clab.Benchmark, sink *obs.Sink) ([]Table3Row, error) {
	var rows []Table3Row
	for _, b := range benches {
		s, err := GetSetup(b)
		if err != nil {
			return nil, err
		}
		wcetUs := s.Table.TotalTimeNs(len(s.Table.Points)-1) / 1000
		simUs := float64(s.SteadySimpleCycles) / 1000
		cxUs := float64(s.SteadyComplexCycles) / 1000
		row := Table3Row{
			Name:         b.Name,
			DynInsts:     s.DynInsts,
			TightNs:      s.Deadline(true),
			LooseNs:      s.Deadline(false),
			SubTasks:     b.SubTasks,
			WCETUs:       wcetUs,
			SimpleUs:     simUs,
			ComplexUs:    cxUs,
			WCETOverSim:  wcetUs / simUs,
			SimOverCmplx: simUs / cxUs,
		}
		rows = append(rows, row)
		if mw := sink.M(); mw != nil {
			mw.Write(obs.Record{
				obs.F("kind", "table3"),
				obs.F("bench", row.Name),
				obs.F("dyn_insts", row.DynInsts),
				obs.F("tight_ns", row.TightNs),
				obs.F("loose_ns", row.LooseNs),
				obs.F("sub_tasks", row.SubTasks),
				obs.F("wcet_us", row.WCETUs),
				obs.F("simple_us", row.SimpleUs),
				obs.F("complex_us", row.ComplexUs),
				obs.F("wcet_over_simple", row.WCETOverSim),
				obs.F("simple_over_complex", row.SimOverCmplx),
			})
			last := len(s.Table.Points) - 1
			for k := 0; k < s.Table.NumSubTasks(); k++ {
				mw.Write(obs.Record{
					obs.F("kind", "table3_subtask"),
					obs.F("bench", row.Name),
					obs.F("sub_task", k),
					obs.F("wcet_cycles_1ghz", s.Table.Cycles[last][k]),
					obs.F("dcache_pad", s.DPad[k]),
				})
			}
		}
	}
	return rows, nil
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE 3. C-lab benchmarks (scaled inputs).\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10s", r.Name)
	}
	b.WriteByte('\n')
	line := func(label string, f func(Table3Row) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%10s", f(r))
		}
		b.WriteByte('\n')
	}
	line("# dyn. inst. 1 task", func(r Table3Row) string { return fmt.Sprintf("%.1fK", float64(r.DynInsts)/1000) })
	line("tight dead. (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.TightNs/1000) })
	line("loose dead. (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.LooseNs/1000) })
	line("# of sub-tasks", func(r Table3Row) string { return fmt.Sprintf("%d", r.SubTasks) })
	line("WCET @1GHz (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.WCETUs) })
	line("actual: simple (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.SimpleUs) })
	line("actual: complex (us)", func(r Table3Row) string { return fmt.Sprintf("%.1f", r.ComplexUs) })
	line("WCET/simple", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.WCETOverSim) })
	line("simple/complex", func(r Table3Row) string { return fmt.Sprintf("%.2f", r.SimOverCmplx) })
	return b.String()
}

// SavingsRow is one benchmark's power comparison for Figures 2-4.
type SavingsRow struct {
	Name    string
	Tight   bool
	Complex *ProcResult
	Simple  *ProcResult
	Savings float64 // 1 - complex/simple average power
}

// RunComparison runs both processors under cfg and returns the power
// comparison. FlushTasks only perturbs the complex processor (Figure 4
// injects mispredictions into the VISA-compliant core; simple-fixed is the
// unperturbed baseline).
func RunComparison(b *clab.Benchmark, cfg Config) (*SavingsRow, error) {
	s, err := GetSetup(b)
	if err != nil {
		return nil, err
	}
	cx, err := RunProcessor(s, true, cfg)
	if err != nil {
		return nil, err
	}
	simpleCfg := cfg
	simpleCfg.FlushTasks = 0
	sf, err := RunProcessor(s, false, simpleCfg)
	if err != nil {
		return nil, err
	}
	if cx.DeadlineViolations > 0 || sf.DeadlineViolations > 0 {
		return nil, errf("rt: %s: DEADLINE VIOLATED (complex=%d simple=%d) — safety property broken",
			b.Name, cx.DeadlineViolations, sf.DeadlineViolations)
	}
	row := &SavingsRow{
		Name:    b.Name,
		Tight:   cfg.Tight,
		Complex: cx,
		Simple:  sf,
		Savings: Savings(cx, sf),
	}
	if mw := cfg.Obs.M(); mw != nil {
		mw.Write(obs.Record{
			obs.F("kind", "summary"),
			obs.F("label", cfg.Label),
			obs.F("bench", b.Name),
			obs.F("tight", cfg.Tight),
			obs.F("standby", cfg.Standby),
			obs.F("freq_advantage", cfg.FreqAdvantage),
			obs.F("flush_tasks", cfg.FlushTasks),
			obs.F("savings", row.Savings),
			obs.F("complex_avg_power", cx.AvgPower),
			obs.F("simple_avg_power", sf.AvgPower),
			obs.F("complex_energy", cx.Energy),
			obs.F("simple_energy", sf.Energy),
			obs.F("complex_missed", cx.MissedTasks),
			obs.F("simple_missed", sf.MissedTasks),
			obs.F("complex_spec_mhz", cx.FinalSpecMHz),
			obs.F("complex_rec_mhz", cx.FinalRecMHz),
			obs.F("simple_spec_mhz", sf.FinalSpecMHz),
		})
	}
	return row, nil
}

// Figure2 runs the headline experiment: power savings of the VISA-compliant
// complex processor relative to simple-fixed, tight and loose deadlines,
// with and without 10% standby power.
func Figure2(benches []*clab.Benchmark, instances int, sink *obs.Sink) (string, []SavingsRow, error) {
	var b strings.Builder
	var all []SavingsRow
	fmt.Fprintf(&b, "FIGURE 2. Power savings of the VISA-compliant complex processor\n")
	fmt.Fprintf(&b, "relative to simple-fixed (T=tight, L=loose deadline).\n\n")
	fmt.Fprintf(&b, "%-8s %6s %14s %14s %12s %12s\n",
		"bench", "dl", "savings", "savings+stby", "simple MHz", "complex MHz")
	for _, bench := range benches {
		for _, tight := range []bool{true, false} {
			tag := "T"
			if !tight {
				tag = "L"
			}
			row, err := RunComparison(bench, Config{Tight: tight, Instances: instances,
				Obs: sink, Label: "fig2/" + tag})
			if err != nil {
				return "", nil, err
			}
			sb, err := RunComparison(bench, Config{Tight: tight, Instances: instances, Standby: true,
				Obs: sink, Label: "fig2/" + tag + "+stby"})
			if err != nil {
				return "", nil, err
			}
			fmt.Fprintf(&b, "%-8s %6s %13.1f%% %13.1f%% %12d %12d\n",
				bench.Name, tag, row.Savings*100, sb.Savings*100,
				row.Simple.FinalSpecMHz, row.Complex.FinalSpecMHz)
			all = append(all, *row, *sb)
		}
	}
	return b.String(), all, nil
}

// Figure3 grants simple-fixed 1.5x the frequency at equal voltage (tight
// deadline).
func Figure3(benches []*clab.Benchmark, instances int, sink *obs.Sink) (string, []SavingsRow, error) {
	var b strings.Builder
	var all []SavingsRow
	fmt.Fprintf(&b, "FIGURE 3. Power savings with simple-fixed granted 1.5x frequency\n")
	fmt.Fprintf(&b, "at equal voltage (tight deadline).\n\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %12s\n",
		"bench", "savings", "savings+stby", "simple MHz", "complex MHz")
	for _, bench := range benches {
		cfg := Config{Tight: true, FreqAdvantage: 1.5, Instances: instances,
			Obs: sink, Label: "fig3"}
		row, err := RunComparison(bench, cfg)
		if err != nil {
			return "", nil, err
		}
		cfg.Standby = true
		cfg.Label = "fig3+stby"
		sb, err := RunComparison(bench, cfg)
		if err != nil {
			return "", nil, err
		}
		fmt.Fprintf(&b, "%-8s %13.1f%% %13.1f%% %12d %12d\n",
			bench.Name, row.Savings*100, sb.Savings*100,
			row.Simple.FinalSpecMHz, row.Complex.FinalSpecMHz)
		all = append(all, *row, *sb)
	}
	return b.String(), all, nil
}

// Figure4 injects mispredictions by flushing caches and predictors at the
// start of 10%, 20%, and 30% of tasks (tight deadline) and reports the
// decline in savings; every deadline must still be met.
func Figure4(benches []*clab.Benchmark, instances int, sink *obs.Sink) (string, []SavingsRow, error) {
	var b strings.Builder
	var all []SavingsRow
	fmt.Fprintf(&b, "FIGURE 4. Power savings with injected mispredictions\n")
	fmt.Fprintf(&b, "(caches+predictors flushed at the start of 10%%/20%%/30%% of tasks).\n\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %14s\n",
		"bench", "0%", "10%", "20%", "30%", "missed@30%")
	for _, bench := range benches {
		fmt.Fprintf(&b, "%-8s ", bench.Name)
		var missed int
		for _, pct := range []int{0, 10, 20, 30} {
			n := instances
			if n == 0 {
				n = Instances
			}
			cfg := Config{Tight: true, Instances: n, FlushTasks: n * pct / 100,
				Obs: sink, Label: fmt.Sprintf("fig4/%d%%", pct)}
			row, err := RunComparison(bench, cfg)
			if err != nil {
				return "", nil, err
			}
			fmt.Fprintf(&b, "%9.1f%% ", row.Savings*100)
			all = append(all, *row)
			if pct == 30 {
				missed = row.Complex.MissedTasks
			}
		}
		fmt.Fprintf(&b, "%14d\n", missed)
	}
	fmt.Fprintf(&b, "\nAll deadlines met in every run (checked).\n")
	return b.String(), all, nil
}
