package rt

import (
	"runtime"
	"sync"

	"visa/internal/obs"
)

// Engine executes experiment plans on a worker pool with a deterministic
// merge: however many workers run, the report's rows, rendered text, and
// metrics stream are byte-identical to a serial run.
//
// Three mechanisms give that guarantee. Each job writes its metrics into a
// private record buffer (obs.NewRecordBuffer) that the engine replays into
// Sink in plan order once the jobs finish. Rows are stored at the job's
// plan index, so renderers see plan order regardless of completion order.
// And when several jobs fail, the error reported is the first in plan
// order — with the metrics of the jobs preceding it replayed, exactly as a
// serial run would have left the stream.
type Engine struct {
	// Workers is the pool size; <= 0 selects runtime.NumCPU().
	Workers int

	// Sink receives the merged metrics stream. Attaching a Tracer or
	// Registry forces serial execution: their timelines/name-spaces are
	// shared mutable state that only an in-order run keeps deterministic.
	Sink *obs.Sink
}

// Run validates every job, executes the plan, merges results in plan
// order, and renders the report text.
func (e *Engine) Run(p *Plan) (*Report, error) {
	for i := range p.Jobs {
		// Validate against the engine's sink: the per-job sink the engine
		// injects has metrics attached exactly when the engine's does.
		cfg := p.Jobs[i].Config
		cfg.Obs = e.sink()
		if err := cfg.Validate(); err != nil {
			return nil, errf("rt: plan %s job %d (%s): %v", p.Name, i, p.Jobs[i].Bench.Name, err)
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if e.sink().T() != nil || e.sink().R() != nil {
		workers = 1
	}
	if workers > len(p.Jobs) {
		workers = len(p.Jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]JobResult, len(p.Jobs))
	errs := make([]error, len(p.Jobs))
	bufs := make([]*obs.MetricsWriter, len(p.Jobs))
	metricsOn := e.sink().M() != nil

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sink := &obs.Sink{}
				if metricsOn {
					bufs[i] = obs.NewRecordBuffer()
					sink.Metrics = bufs[i]
				}
				if workers == 1 {
					// Serial runs may share the engine's tracer and
					// counter registry directly: jobs arrive in order.
					sink.Trace = e.sink().T()
					sink.Registry = e.sink().R()
				}
				results[i], errs[i] = runJob(p.Jobs[i], sink)
			}
		}()
	}
	for i := range p.Jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Deterministic merge: replay each job's records in plan order; a
	// failed job contributes whatever it wrote before failing (as in a
	// serial run) and ends the stream.
	mw := e.sink().M()
	for i := range p.Jobs {
		bufs[i].Replay(mw)
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	rep := &Report{Plan: p, Results: results}
	if p.Render != nil {
		rep.Text = p.Render(rep)
	}
	return rep, nil
}

// sink returns the engine's sink, which may be nil (instrumentation off).
func (e *Engine) sink() *obs.Sink { return e.Sink }

// runJob executes one job against the given (per-job) sink.
func runJob(job Job, sink *obs.Sink) (JobResult, error) {
	switch job.Kind {
	case JobTable3:
		row, err := table3Row(job.Bench, sink)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Table3: &row}, nil
	default:
		cfg := job.Config
		cfg.Obs = sink
		row, err := RunComparison(job.Bench, cfg)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Savings: row}, nil
	}
}
