package rt

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"visa/internal/exec"
	"visa/internal/obs"
)

// Engine executes experiment plans on a worker pool with a deterministic
// merge: however many workers run, the report's rows, rendered text, and
// metrics stream are byte-identical to a serial run.
//
// Three mechanisms give that guarantee. Each job writes its metrics into a
// private record buffer (obs.NewRecordBuffer) that the engine replays into
// Sink in plan order once the jobs finish. Rows are stored at the job's
// plan index, so renderers see plan order regardless of completion order.
// And job failures are stored at the job's plan index too, so the report's
// failure section and Err() are plan-order deterministic.
//
// The engine is crash-proof: a panicking job is converted to a PanicError
// at its index rather than taking the process (and the other workers) down,
// a transient failure (one wrapped with Transient) is retried up to
// MaxRetries times with doubling Backoff, and a job exceeding its cycle
// budget fails with ErrCycleBudget. Failed jobs degrade gracefully — the
// Report still carries every other job's row and metrics.
type Engine struct {
	// Workers is the pool size; <= 0 selects runtime.NumCPU().
	Workers int

	// Sink receives the merged metrics stream. Attaching a Tracer or
	// Registry forces serial execution: their timelines/name-spaces are
	// shared mutable state that only an in-order run keeps deterministic.
	Sink *obs.Sink

	// MaxRetries bounds re-execution of jobs that fail with a Transient
	// error. 0 disables retry; permanent errors are never retried.
	MaxRetries int

	// Backoff is the sleep before the first retry; it doubles on each
	// subsequent attempt. Zero means retry immediately.
	Backoff time.Duration

	// CycleBudget, when > 0, is applied as Config.CycleBudget to every
	// standard job whose config leaves it unset — a per-task watchdog on
	// the simulation itself, so one runaway job cannot hang the plan.
	CycleBudget int64

	// Coalesce, when non-nil (and metrics are attached), gives every job a
	// private obs.CoalescingSink over its record buffer: countable events
	// accumulate in RAM as per-key deltas and only the net effect is
	// flushed (at threshold/age triggers and at job end), so the durable
	// stream carries Θ(distinct series) counter records instead of one per
	// event. The per-job sinks flush into per-job buffers replayed in plan
	// order, so the merged stream stays byte-identical for any Workers.
	Coalesce *obs.CoalesceOptions

	// OnJobDone, when non-nil, is called once per job as it completes —
	// in completion order, from the worker goroutines, so the callback
	// must be safe for concurrent use. recs is the job's buffered metrics
	// stream (nil when metrics are off); retried jobs report once, after
	// the final attempt. The service layer streams per-job results through
	// this hook; consumers needing plan order key on i.
	OnJobDone func(i int, res JobResult, recs []obs.Record, err error)
}

// ErrTransient marks an error as retryable by the engine. Wrap with
// Transient; test with errors.Is(err, ErrTransient).
var ErrTransient = errors.New("transient failure")

// Transient wraps err so the engine's retry loop will re-run the job.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// PanicError is a job panic captured by the engine's recovery barrier. Its
// Error string deliberately excludes the stack trace (goroutine ids and
// addresses vary run to run); the stack is kept as a field for debugging.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack at recovery time
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Run validates every job, executes the plan, merges results in plan
// order, and renders the report text. Configuration errors are hard
// failures (nil Report); execution failures — panics, budget overruns,
// exhausted retries — degrade gracefully into Report.Errors.
func (e *Engine) Run(p *Plan) (*Report, error) {
	jobs := make([]Job, len(p.Jobs))
	copy(jobs, p.Jobs)
	for i := range jobs {
		if jobs[i].Run != nil {
			continue // custom jobs own their inputs
		}
		if e.CycleBudget > 0 && jobs[i].Config.CycleBudget == 0 {
			jobs[i].Config.CycleBudget = e.CycleBudget
		}
		// Validate against the engine's sink: the per-job sink the engine
		// injects has metrics attached exactly when the engine's does.
		cfg := jobs[i].Config
		cfg.Obs = e.sink()
		if err := cfg.Validate(); err != nil {
			// Validate's errors wrap ErrInvalidSpec; keep that root visible
			// through the plan/job attribution.
			return nil, fmt.Errorf("rt: plan %s job %d (%s): %w", p.Name, i, jobs[i].name(), err)
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if e.sink().T() != nil || e.sink().R() != nil {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]JobResult, len(jobs))
	errs := make([]error, len(jobs))
	bufs := make([]*obs.MetricsWriter, len(jobs))
	metricsOn := e.sink().M() != nil

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], bufs[i], errs[i] = e.runWithRetry(jobs[i], workers == 1, metricsOn)
				if e.OnJobDone != nil {
					e.OnJobDone(i, results[i], bufs[i].Records(), errs[i])
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Deterministic merge: replay every job's records in plan order. A
	// failed job contributes whatever it wrote before failing, and the
	// jobs after it still contribute in full (graceful degradation).
	mw := e.sink().M()
	failed := 0
	for i := range jobs {
		bufs[i].Replay(mw)
		if errs[i] != nil {
			failed++
		}
	}

	rep := &Report{Plan: p, Results: results, Errors: errs, Failed: failed}
	if p.Render != nil {
		rep.Text = p.Render(rep)
	}
	if failed > 0 {
		rep.Text += failureSection(p, errs, failed)
	}
	return rep, nil
}

// runWithRetry executes one job under the panic barrier, retrying
// transient failures with doubling backoff. Each attempt writes into a
// fresh record buffer so a retried job's metrics appear exactly once.
func (e *Engine) runWithRetry(job Job, serial, metricsOn bool) (JobResult, *obs.MetricsWriter, error) {
	backoff := e.Backoff
	for attempt := 0; ; attempt++ {
		sink := &obs.Sink{}
		var buf *obs.MetricsWriter
		var cs *obs.CoalescingSink
		if metricsOn {
			buf = obs.NewRecordBuffer()
			sink.Metrics = buf
			if e.Coalesce != nil {
				// Each attempt gets a fresh coalescer over the fresh
				// buffer, so retried jobs flush exactly once.
				cs = obs.NewCoalescingSink(buf, *e.Coalesce)
				sink.Counters = cs
			}
		}
		if serial {
			// Serial runs may share the engine's tracer and counter
			// registry directly: jobs arrive in order.
			sink.Trace = e.sink().T()
			sink.Registry = e.sink().R()
		}
		res, err := safeRun(job, sink)
		if cerr := cs.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil || !errors.Is(err, ErrTransient) || attempt >= e.MaxRetries {
			return res, buf, classify(err)
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// classify roots job failures in the exported sentinels so the service
// boundary maps them with errors.Is: a functional-machine budget overrun
// (*exec.BudgetError) joins ErrBudgetExceeded alongside the pipeline-level
// ErrCycleBudget, which already wraps it.
func classify(err error) error {
	if err == nil {
		return nil
	}
	var be *exec.BudgetError
	if !errors.Is(err, ErrBudgetExceeded) && errors.As(err, &be) {
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	}
	return err
}

// safeRun is the crash barrier: a panic inside the job becomes a
// PanicError return instead of unwinding through the worker pool.
func safeRun(job Job, sink *obs.Sink) (res JobResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = JobResult{}
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return runJob(job, sink)
}

// failureSection renders the deterministic failed-jobs appendix of a
// degraded report.
func failureSection(p *Plan, errs []error, failed int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nFAILED JOBS (%d/%d):\n", failed, len(errs))
	idxs := make([]int, 0, failed)
	for i, err := range errs {
		if err != nil {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		fmt.Fprintf(&b, "  job %d (%s): %v\n", i, p.Jobs[i].name(), errs[i])
	}
	return b.String()
}

// sink returns the engine's sink, which may be nil (instrumentation off).
func (e *Engine) sink() *obs.Sink { return e.Sink }

// runJob executes one job against the given (per-job) sink.
func runJob(job Job, sink *obs.Sink) (JobResult, error) {
	if job.Run != nil {
		return job.Run(sink)
	}
	switch job.Kind {
	case JobTable3:
		row, err := table3Row(job.Bench, sink)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Table3: &row}, nil
	case JobSafety:
		cfg := job.Config
		cfg.Obs = sink
		row, err := runSafetyJob(job.Bench, cfg)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Safety: row}, nil
	default:
		cfg := job.Config
		cfg.Obs = sink
		row, err := RunComparison(job.Bench, cfg)
		if err != nil {
			return JobResult{}, err
		}
		return JobResult{Savings: row}, nil
	}
}
