package rt

import (
	"testing"

	"visa/internal/clab"
	"visa/internal/core"
	"visa/internal/power"
)

// TestRunTaskAllocBudget pins the engine-level allocation budget for one
// steady-state task instance — the unit of work Figure 2's experiment runs
// thousands of times. The per-cycle loops (functional Fill, pipeline Feed)
// must contribute nothing; what remains is per-instance bookkeeping (the
// AET slice and the protocol closures), so the budget is a small constant
// independent of the instruction count.
func TestRunTaskAllocBudget(t *testing.T) {
	s, err := GetSetup(clab.ByName("cnt"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := s.Deadline(false)
	params := core.Params{DeadlineNs: deadline, OvhdNs: OvhdNs}
	plan, ok := core.Solve(core.SpecVISA, params, s.Table, s.WCETSeedPETs())
	if !ok {
		t.Fatal("no feasible plan for cnt")
	}

	acct := &power.Accounting{Profile: power.ComplexProfile}
	ps := newProcSim(s.Prog, ProcComplex, plan.Spec.FMHz)
	var runErr error
	run := func() {
		if _, err := ps.runTask(plan, acct, 0, nil); err != nil {
			runErr = err
		}
	}
	run() // warm: caches, predictors, and window high-water marks
	if runErr != nil {
		t.Fatal(runErr)
	}
	allocs := testing.AllocsPerRun(5, run)
	if runErr != nil {
		t.Fatal(runErr)
	}
	// Budget: the aets slice plus the two protocol closures and their
	// captured frame. Anything above this means a cycle-proportional
	// allocation crept back into the feed path.
	const budget = 8
	if allocs > budget {
		t.Errorf("runTask allocates %.1f per steady-state instance, budget %d", allocs, budget)
	}
}
