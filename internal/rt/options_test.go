package rt

import (
	"errors"
	"testing"

	"visa/internal/fault"
)

func TestNewConfigOptions(t *testing.T) {
	spec := fault.Spec{Kind: fault.MemJitter, Rate: 50, Seed: 7}
	c := NewConfig(
		WithTightDeadline(true),
		WithStandby(),
		WithInstances(17),
		WithHistogramTarget(0.25),
		WithFreqAdvantage(1.5),
		WithFlushTasks(3),
		WithFaultSpec(spec),
		WithVariedInputSeeds(),
		WithCycleBudget(1e9),
		WithLabel("opt"),
	)
	if !c.Tight || !c.Standby || c.Instances != 17 || c.FlushTasks != 3 {
		t.Errorf("scalar options not applied: %+v", c)
	}
	if c.Policy != PETHistogram || c.HistogramMiss != 0.25 {
		t.Errorf("WithHistogramTarget: policy=%v miss=%v", c.Policy, c.HistogramMiss)
	}
	if c.FreqAdvantage != 1.5 || !c.VaryInputSeeds || c.CycleBudget != 1e9 || c.Label != "opt" {
		t.Errorf("options not applied: %+v", c)
	}
	if c.Fault == nil || *c.Fault != spec {
		t.Errorf("WithFaultSpec: got %v, want %v", c.Fault, spec)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPETPolicyParseAndString(t *testing.T) {
	for _, p := range []PETPolicy{PETLastN, PETHistogram} {
		got, err := ParsePETPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePETPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePETPolicy("nope"); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("ParsePETPolicy(nope) err = %v, want ErrInvalidSpec", err)
	}
}

// TestDeprecatedHistogramShim: the old bool flag and the new enum select
// the same effective policy.
func TestDeprecatedHistogramShim(t *testing.T) {
	old := Config{Histogram: true}
	if old.policy() != PETHistogram {
		t.Errorf("Histogram flag: effective policy %v, want PETHistogram", old.policy())
	}
	if (Config{}).policy() != PETLastN {
		t.Errorf("zero config: effective policy %v, want PETLastN", (Config{}).policy())
	}
	enum := NewConfig(WithPETPolicy(PETHistogram))
	if enum.policy() != PETHistogram {
		t.Errorf("enum config: effective policy %v, want PETHistogram", enum.policy())
	}
}

func TestValidateRejectsUnknownPolicy(t *testing.T) {
	err := Config{Policy: PETPolicy(99)}.Validate()
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Validate err = %v, want ErrInvalidSpec", err)
	}
}

// TestBudgetSentinel: ErrCycleBudget failures classify as budget overruns
// at the service boundary via errors.Is.
func TestBudgetSentinel(t *testing.T) {
	if !errors.Is(ErrCycleBudget, ErrBudgetExceeded) {
		t.Error("ErrCycleBudget must wrap ErrBudgetExceeded")
	}
}
