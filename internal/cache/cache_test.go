package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"visa/internal/obs"
)

func TestGeometry(t *testing.T) {
	c := MustNew(VISAL1)
	if got := VISAL1.Sets(); got != 256 {
		t.Errorf("VISA L1 sets = %d, want 256", got)
	}
	if c.Block(0) != 0 || c.Block(63) != 0 || c.Block(64) != 1 {
		t.Error("block extraction wrong for 64B blocks")
	}
}

// TestBadGeometryRejected covers every validation branch: New reports the
// defect as an error and MustNew turns the same defect into a panic.
func TestBadGeometryRejected(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Assoc: 4, BlockBytes: 64},     // non-positive size
		{SizeBytes: 1024, Assoc: 0, BlockBytes: 64},  // non-positive assoc
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 0},   // non-positive block
		{SizeBytes: 1000, Assoc: 3, BlockBytes: 48},  // size not divisible
		{SizeBytes: 2304, Assoc: 2, BlockBytes: 64},  // set count not 2^k (18 sets)
		{SizeBytes: 20736, Assoc: 2, BlockBytes: 81}, // block not 2^k
	}
	for _, cfg := range bad {
		c, err := New(cfg)
		if err == nil || c != nil {
			t.Errorf("New(%+v) accepted an invalid geometry", cfg)
		}
	}
	c, err := New(VISAL1)
	if err != nil || c == nil {
		t.Fatalf("New(VISAL1) = %v, %v", c, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an invalid geometry")
		}
	}()
	MustNew(Config{SizeBytes: 1000, Assoc: 3, BlockBytes: 48})
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if !c.Access(63) {
		t.Error("same-block access missed")
	}
	if c.Access(64) {
		t.Error("next block hit cold")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 || st.Hits() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 8 sets of 64B: addresses 0, 512, 1024 map to set 0.
	c := MustNew(Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64})
	c.Access(0)
	c.Access(512)
	c.Access(0)    // 0 now MRU
	c.Access(1024) // evicts 512 (LRU)
	if !c.Probe(0) {
		t.Error("MRU block 0 was evicted")
	}
	if c.Probe(512) {
		t.Error("LRU block 512 survived")
	}
	if !c.Probe(1024) {
		t.Error("just-filled block missing")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(VISAL1)
	c.Access(0)
	c.Access(4096)
	c.Flush()
	if c.Probe(0) || c.Probe(4096) {
		t.Error("flush left valid lines")
	}
	if c.Stats().Accesses != 2 {
		t.Error("flush clobbered stats")
	}
}

// Property: after touching k <= assoc distinct blocks of one set, all of
// them hit on re-access (LRU never evicts within the working set).
func TestWorkingSetFitsProperty(t *testing.T) {
	cfg := Config{SizeBytes: 4096, Assoc: 4, BlockBytes: 64}
	setStride := uint32(cfg.Sets() * cfg.BlockBytes)
	f := func(seed int64, set uint8, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := MustNew(cfg)
		k := int(n)%cfg.Assoc + 1
		base := uint32(int(set)%cfg.Sets()) * uint32(cfg.BlockBytes)
		blocks := make([]uint32, k)
		for i := range blocks {
			blocks[i] = base + uint32(i)*setStride
		}
		// Touch each block once in random order, repeatedly.
		for pass := 0; pass < 4; pass++ {
			r.Shuffle(k, func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
			for _, a := range blocks {
				hit := c.Access(a)
				if pass > 0 && !hit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: miss count never exceeds access count, and re-running the same
// access sequence on a fresh cache is deterministic.
func TestDeterminismProperty(t *testing.T) {
	cfg := Config{SizeBytes: 2048, Assoc: 2, BlockBytes: 32}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seq := make([]uint32, 300)
		for i := range seq {
			seq[i] = uint32(r.Intn(64)) * 32
		}
		run := func() Stats {
			c := MustNew(cfg)
			for _, a := range seq {
				c.Access(a)
			}
			return c.Stats()
		}
		s1, s2 := run(), run()
		return s1 == s2 && s1.Misses <= s1.Accesses && s1.MissRate() >= 0 && s1.MissRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStatsDelta: interval accounting via snapshot/delta must equal manual
// subtraction, and the delta's miss rate is the interval's own.
func TestStatsDelta(t *testing.T) {
	c := MustNew(Config{SizeBytes: 2048, Assoc: 2, BlockBytes: 32})
	for i := 0; i < 100; i++ {
		c.Access(uint32(i) * 32)
	}
	snap := c.Stats()
	for i := 0; i < 50; i++ {
		c.Access(uint32(i) * 32) // some hit, some were evicted
	}
	d := c.Stats().Delta(snap)
	if d.Accesses != 50 {
		t.Errorf("delta accesses = %d, want 50", d.Accesses)
	}
	if got := c.Stats().Misses - snap.Misses; d.Misses != got {
		t.Errorf("delta misses = %d, want %d", d.Misses, got)
	}
	if d.Hits() != d.Accesses-d.Misses {
		t.Errorf("delta hits = %d", d.Hits())
	}
	if zero := (Stats{}).Delta(Stats{}); zero != (Stats{}) {
		t.Errorf("zero delta = %+v", zero)
	}
}

// TestRegisterObs: counters registered in the observability registry must
// track the live cache statistics lazily.
func TestRegisterObs(t *testing.T) {
	c := MustNew(Config{SizeBytes: 2048, Assoc: 2, BlockBytes: 32})
	reg := obs.NewRegistry()
	c.RegisterObs(reg, "l1d")
	c.Access(0)
	c.Access(0)
	vals := map[string]int64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Int()
	}
	if vals["l1d.accesses"] != 2 || vals["l1d.misses"] != 1 || vals["l1d.hits"] != 1 {
		t.Errorf("snapshot = %v", vals)
	}
}
