// Package cache implements the set-associative LRU cache timing model used
// for both L1 instruction and data caches (paper Table 1: 64 KB, 4-way,
// 64-byte blocks, 1-cycle hit). The model tracks hits and misses only;
// contents are architectural state held by the functional executor.
package cache

import (
	"fmt"

	"visa/internal/obs"
)

// Config describes a cache geometry.
type Config struct {
	SizeBytes  int
	Assoc      int
	BlockBytes int
}

// VISAL1 is the L1 configuration from the paper's Table 1.
var VISAL1 = Config{SizeBytes: 64 * 1024, Assoc: 4, BlockBytes: 64}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Assoc*c.BlockBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by assoc*block", c.SizeBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	return nil
}

// line is one cache line, packed to 8 bytes so a 4-way set is half an L1
// line of the host: tv holds the block number plus one (0 = invalid), and
// the LRU stamp is 32-bit with a deterministic renormalization on overflow.
// The packing matters: the VISA L1 geometry gives 16 KB of line metadata
// per modeled cache (it was 32 KB at 16 bytes per line), and the feed loops
// walk these arrays on every modeled access, so their footprint competes
// with everything else in the host L1.
type line struct {
	tv  uint32 // block number + 1; 0 = invalid
	lru uint32 // larger = more recently used
}

// Stats counts accesses.
type Stats struct {
	Accesses int64
	Misses   int64
}

// Hits returns Accesses - Misses.
func (s Stats) Hits() int64 { return s.Accesses - s.Misses }

// MissRate returns the fraction of accesses that missed.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Delta returns the counters accumulated since the prev snapshot (s - prev).
// Take a snapshot with Stats() before an interval and apply Delta after it
// to get per-interval (e.g. per-task-instance) figures without manual
// subtraction at every call site; MissRate on the delta is the interval's
// miss rate.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{Accesses: s.Accesses - prev.Accesses, Misses: s.Misses - prev.Misses}
}

// Cache is a set-associative LRU cache. The lines of all sets live in one
// contiguous array (set s occupies lines[s*assoc : (s+1)*assoc]): a single
// allocation, and one pointer chase per access instead of two.
type Cache struct {
	cfg       Config
	lines     []line
	assoc     int
	setMask   uint32
	blockBits uint
	clock     uint32
	stats     Stats
}

// New builds a cache, rejecting invalid geometries with an error so that
// callers constructing configurations at run time (sweeps, config files)
// can report them instead of crashing.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, assoc: cfg.Assoc, setMask: uint32(cfg.Sets() - 1)}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blockBits++
	}
	c.lines = make([]line, cfg.Sets()*cfg.Assoc)
	return c, nil
}

// MustNew is New panicking on error, for the compile-time-constant
// geometries (VISAL1 and test fixtures) where a bad config is a programming
// error, not an input.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Block returns the block number addr falls in (used to coalesce accesses).
func (c *Cache) Block(addr uint32) uint32 { return addr >> c.blockBits }

// Access touches addr and reports whether it hit. A miss allocates the block
// with LRU replacement (write-allocate; the timing models charge the miss
// penalty separately).
func (c *Cache) Access(addr uint32) bool {
	if c.clock == ^uint32(0) {
		c.renormalize()
	}
	c.clock++
	c.stats.Accesses++
	blk := addr >> c.blockBits
	base := int(blk&c.setMask) * c.assoc
	set := c.lines[base : base+c.assoc]
	tv := blk + 1 // block number + 1 serves as the tag; 0 means invalid
	// Hit scan only: on the (common, branch-predictable) hit path the
	// victim bookkeeping below is dead work, and hoisting it out keeps the
	// scan to one compare per way.
	for i := range set {
		if set[i].tv == tv {
			set[i].lru = c.clock
			return true
		}
	}
	// Miss: pick the LRU victim, preferring invalid lines. Scanning after
	// the failed hit scan chooses the same victim the old fused loop did.
	// Invalid lines always carry lru 0, below any valid line's stamp (the
	// clock is pre-incremented), so the stamp comparison alone prefers
	// them; the tv check only breaks 0-0 ties toward the invalid line.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru || set[i].tv == 0 && set[victim].tv != 0 {
			victim = i
		}
	}
	c.stats.Misses++
	set[victim] = line{tv: tv, lru: c.clock}
	return false
}

// renormalize handles 32-bit LRU clock wraparound: recency ORDER is all the
// replacement policy reads, so collapsing every stamp to 0 and restarting
// the clock is a deterministic approximation that loses only the ordering
// among lines last touched before the reset — once per 2^32 accesses on a
// given cache instance.
func (c *Cache) renormalize() {
	for i := range c.lines {
		c.lines[i].lru = 0
	}
	c.clock = 0
}

// Probe reports whether addr would hit, without updating LRU or stats.
func (c *Cache) Probe(addr uint32) bool {
	blk := addr >> c.blockBits
	base := int(blk&c.setMask) * c.assoc
	for _, l := range c.lines[base : base+c.assoc] {
		if l.tv == blk+1 {
			return true
		}
	}
	return false
}

// Flush invalidates every line (used to inject mispredictions, Figure 4).
// Statistics are preserved.
func (c *Cache) Flush() {
	clear(c.lines)
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RegisterObs registers the cache's counters under prefix (e.g.
// "cnt.complex.dcache"). Sampling is lazy: the hot Access path is untouched.
func (c *Cache) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Counter(prefix+".accesses", func() int64 { return c.stats.Accesses })
	reg.Counter(prefix+".misses", func() int64 { return c.stats.Misses })
	reg.Counter(prefix+".hits", func() int64 { return c.stats.Hits() })
}
