// Package wal is an append-only write-ahead journal with per-record
// checksums and torn-tail recovery — the durability substrate under the
// simulation service (internal/serve).
//
// The file layout is a fixed 8-byte magic header followed by framed
// records:
//
//	[4-byte little-endian payload length][4-byte CRC-32 (IEEE) of payload][payload]
//
// Appends are single write(2) calls (header and payload in one buffer) so
// a crash tears at most the final record, and the fsync policy decides
// whether each append is forced to stable storage before Append returns.
//
// Recovery distinguishes the two ways a journal can be damaged:
//
//   - A torn tail — the file ends mid-record because the process was
//     killed mid-write or the filesystem truncated the last append. The
//     valid prefix is recovered, the tail is truncated away on Open, and
//     replay proceeds. This is the expected crash shape and is never an
//     error.
//   - A corrupt record — a complete frame whose checksum does not match
//     its payload. That is silent data damage, not a crash artifact, and
//     replay refuses the whole file with a typed *CorruptError rather
//     than silently loading a partial or wrong history.
//
// The package is deliberately time-free: records carry no wall-clock
// fields, so a journal's byte content is a deterministic function of the
// payload sequence appended to it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic is the 8-byte file header identifying a VISA journal (and its
// framing version — bump the trailing digit on incompatible changes).
var Magic = [8]byte{'V', 'I', 'S', 'A', 'W', 'A', 'L', '1'}

// frameHeader is the per-record overhead: 4-byte length + 4-byte CRC.
const frameHeader = 8

// MaxRecord bounds one payload (16 MiB). A length field above it is
// treated as corruption: no legitimate record is that large, and honoring
// arbitrary lengths would let one flipped bit demand gigabytes.
const MaxRecord = 16 << 20

// ErrCorrupt roots every integrity failure replay can detect: checksum
// mismatches, oversized length fields, and foreign file headers. Test
// with errors.Is; the concrete *CorruptError carries the offset.
var ErrCorrupt = errors.New("wal: journal corrupt")

// CorruptError reports a record that is structurally complete but fails
// its integrity check. It wraps ErrCorrupt.
type CorruptError struct {
	Path   string // journal path ("" when replaying a plain reader)
	Offset int64  // byte offset of the offending frame
	Reason string // what failed (checksum, length, magic)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// SyncPolicy selects how hard Append pushes each record toward stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. This is the default and the policy the
	// exactly-once-observable argument assumes.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves durability to the OS page cache: a machine crash
	// may lose acknowledged records (a daemon crash alone does not — the
	// write(2) completed). Useful for tests and throwaway runs.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "never", "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always or never)", s)
}

func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "never"
	}
	return "always"
}

// Replay decodes every complete, checksummed record in r. It returns the
// decoded payloads, the byte length of the valid prefix (magic header
// included), and whether a torn tail was skipped. A checksum or length
// failure on a structurally complete record returns a *CorruptError and
// no records — never a partial silent load.
func Replay(r io.Reader) (recs [][]byte, validSize int64, torn bool, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: replay: %w", err)
	}
	return replayBytes(data, "")
}

func replayBytes(data []byte, path string) (recs [][]byte, validSize int64, torn bool, err error) {
	if len(data) < len(Magic) {
		// Shorter than the header: an empty or torn-at-birth journal.
		// Nothing valid beyond offset 0.
		return nil, 0, len(data) > 0, nil
	}
	for i := range Magic {
		if data[i] != Magic[i] {
			return nil, 0, false, &CorruptError{Path: path, Offset: 0, Reason: "bad magic (not a VISA journal)"}
		}
	}
	off := int64(len(Magic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, false, nil
		}
		if len(rest) < frameHeader {
			return recs, off, true, nil // torn mid-header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecord {
			return nil, 0, false, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("length %d exceeds MaxRecord %d", n, MaxRecord)}
		}
		if int64(len(rest)) < frameHeader+int64(n) {
			return recs, off, true, nil // torn mid-payload
		}
		payload := rest[frameHeader : frameHeader+int64(n)]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, 0, false, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("checksum %08x, want %08x", got, sum)}
		}
		recs = append(recs, payload)
		off += frameHeader + int64(n)
	}
}

// Writer is an append-only journal handle. Append is safe for a single
// goroutine; callers that share one (internal/serve) serialize around it.
// Errors are sticky: after a failed append the writer refuses further
// work, because a journal with a hole in the middle is worse than a dead
// one.
type Writer struct {
	f      *os.File
	path   string
	policy SyncPolicy
	buf    []byte
	err    error
}

// Open opens (or creates) the journal at path, replays its existing
// records, truncates any torn tail, and returns a Writer positioned for
// appending plus the recovered payloads and whether a tail was torn
// away. A corrupt record (complete frame, bad checksum) fails Open with
// a *CorruptError: the caller decides what to do with a damaged journal;
// this package never silently loads part of one.
func Open(path string, policy SyncPolicy) (w *Writer, recs [][]byte, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("wal: open: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close() //visa:allow(errlint): the read error is the one being reported
		return nil, nil, false, fmt.Errorf("wal: open: read: %w", err)
	}
	recs, validSize, torn, err := replayBytes(data, path)
	if err != nil {
		f.Close() //visa:allow(errlint): the corruption error is the one being reported
		return nil, nil, false, err
	}
	if validSize == 0 {
		// Fresh (or header-torn) journal: write the magic header.
		if err := f.Truncate(0); err != nil {
			f.Close() //visa:allow(errlint): the truncate error is the one being reported
			return nil, nil, false, fmt.Errorf("wal: open: truncate: %w", err)
		}
		if _, err := f.WriteAt(Magic[:], 0); err != nil {
			f.Close() //visa:allow(errlint): the write error is the one being reported
			return nil, nil, false, fmt.Errorf("wal: open: write magic: %w", err)
		}
		validSize = int64(len(Magic))
	} else if int64(len(data)) > validSize {
		// Torn tail: drop it so the next append starts on a clean frame
		// boundary instead of extending garbage.
		if err := f.Truncate(validSize); err != nil {
			f.Close() //visa:allow(errlint): the truncate error is the one being reported
			return nil, nil, false, fmt.Errorf("wal: open: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close() //visa:allow(errlint): the seek error is the one being reported
		return nil, nil, false, fmt.Errorf("wal: open: seek: %w", err)
	}
	return &Writer{f: f, path: path, policy: policy}, recs, torn, nil
}

// Append frames payload (length, CRC-32, bytes) and writes it in a single
// write call, fsyncing per the policy. The payload is copied; callers may
// reuse their buffer. This is the admission hot path of the service: the
// frame buffer is reused across appends, so steady-state appends do not
// allocate.
//
//visa:hotpath
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxRecord {
		//visa:allow(hotalloc): oversized-payload refusal is an error path, never taken steady-state
		return fmt.Errorf("wal: append: payload %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	need := frameHeader + len(payload)
	if cap(w.buf) < need {
		//visa:allow(hotalloc): frame buffer grows to the largest record seen, then stays flat
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: append: sync: %w", err)
			return w.err
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of policy.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	return nil
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Err returns the sticky append error, if any.
func (w *Writer) Err() error { return w.err }

// Close syncs (under SyncAlways) and closes the file. The sticky error,
// if any, takes precedence.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	f := w.f
	w.f = nil
	if w.err == nil && w.policy == SyncAlways {
		if err := f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: close: sync: %w", err)
		}
	}
	if err := f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("wal: close: %w", err)
	}
	return w.err
}
