package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRoundTrip pins the framing invariant decode(encode(x)) == x:
// any sequence of payloads appended to a journal replays byte-identically,
// and truncating the file at an arbitrary point either recovers a prefix
// of the sequence or reports typed corruption — never a wrong record.
func FuzzJournalRoundTrip(f *testing.F) {
	f.Add([]byte(`{"type":"admit","id":"j000001","spec":{"version":1}}`), []byte(""), uint16(0))
	f.Add([]byte("a"), []byte("b"), uint16(3))
	f.Add(bytes.Repeat([]byte{0xff}, 300), []byte{0, 1, 2}, uint16(260))
	f.Fuzz(func(t *testing.T, p1, p2 []byte, cut uint16) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		w, recs, torn, err := Open(path, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 || torn {
			t.Fatalf("fresh journal: recs=%d torn=%v", len(recs), torn)
		}
		if err := w.Append(p1); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(p2); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, validSize, torn, err := Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replay of a cleanly written journal failed: %v", err)
		}
		if torn || validSize != int64(len(data)) {
			t.Fatalf("clean journal: torn=%v validSize=%d fileSize=%d", torn, validSize, len(data))
		}
		if len(got) != 2 || !bytes.Equal(got[0], p1) || !bytes.Equal(got[1], p2) {
			t.Fatalf("decode(encode(x)) != x: got %d records", len(got))
		}

		// Truncation property: any prefix replays to a prefix of the
		// payload sequence (or is typed-corrupt — impossible for pure
		// truncation, so require success).
		n := int(cut) % (len(data) + 1)
		pre, _, _, err := Replay(bytes.NewReader(data[:n]))
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				t.Fatalf("pure truncation at %d reported corruption: %v", n, err)
			}
			t.Fatal(err)
		}
		want := [][]byte{p1, p2}
		if len(pre) > 2 {
			t.Fatalf("truncated replay produced %d records from 2", len(pre))
		}
		for i := range pre {
			if !bytes.Equal(pre[i], want[i]) {
				t.Fatalf("truncated replay record %d differs", i)
			}
		}
	})
}
