package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.wal")
}

// appendAll opens path, appends every payload, and closes.
func appendAll(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	w, _, _, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	payloads := [][]byte{
		[]byte(`{"type":"admit","id":"j000001"}`),
		{},
		[]byte("raw\x00binary\xffbytes"),
		bytes.Repeat([]byte("x"), 4096),
	}
	appendAll(t, path, payloads...)

	w, recs, torn, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if torn {
		t.Error("clean journal reported torn")
	}
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(recs[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], payloads[i])
		}
	}
}

func TestReopenAppendsAfterExisting(t *testing.T) {
	path := tmpJournal(t)
	appendAll(t, path, []byte("one"))
	appendAll(t, path, []byte("two"))
	_, recs, _, err := openReadOnly(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "one" || string(recs[1]) != "two" {
		t.Fatalf("recs = %q, want [one two]", recs)
	}
}

func openReadOnly(t *testing.T, path string) (*Writer, [][]byte, bool, error) {
	t.Helper()
	w, recs, torn, err := Open(path, SyncNever)
	if err == nil {
		t.Cleanup(func() { w.Close() })
	}
	return w, recs, torn, err
}

// TestTornTailEveryOffset is the torn-write sweep: a journal of three
// records truncated at every byte offset inside the last record must
// recover exactly the first two, and the truncated tail must be removed
// so subsequent appends resume cleanly.
func TestTornTailEveryOffset(t *testing.T) {
	path := tmpJournal(t)
	appendAll(t, path, []byte("alpha"), []byte("beta-record"), []byte("gamma: the last record"))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := frameHeader + len("gamma: the last record")
	lastStart := len(full) - lastLen

	for cut := lastStart; cut < len(full); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w, recs, torn, err := Open(p, SyncNever)
			if err != nil {
				t.Fatalf("torn tail rejected: %v", err)
			}
			if torn != (cut != lastStart) {
				t.Errorf("torn = %v at cut %d (lastStart %d)", torn, cut, lastStart)
			}
			if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta-record" {
				t.Fatalf("recovered %q, want the two-record prefix", recs)
			}
			// The journal stays usable: append and re-replay.
			if err := w.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			_, recs2, torn2, err := openReadOnly(t, p)
			if err != nil || torn2 {
				t.Fatalf("re-replay: torn=%v err=%v", torn2, err)
			}
			if len(recs2) != 3 || string(recs2[2]) != "after-recovery" {
				t.Fatalf("post-recovery records = %q", recs2)
			}
		})
	}
}

// TestCorruptChecksumRejected: a bit flip inside a complete record is
// corruption, not a torn tail — Open must fail with *CorruptError and
// load nothing.
func TestCorruptChecksumRejected(t *testing.T) {
	path := tmpJournal(t)
	appendAll(t, path, []byte("good"), []byte("also good"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)+frameHeader] ^= 0xff // first payload byte of record 0
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Open(path, SyncNever)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != int64(len(Magic)) {
		t.Fatalf("corrupt error detail = %+v (err %v)", ce, err)
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	path := tmpJournal(t)
	appendAll(t, path, []byte("x"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the length field to an absurd value with matching tail bytes
	// present (the file is longer than a real header, so the frame is
	// "complete enough" to demand the length check).
	data[len(Magic)] = 0xff
	data[len(Magic)+1] = 0xff
	data[len(Magic)+2] = 0xff
	data[len(Magic)+3] = 0x7f
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err = Open(path, SyncNever); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

func TestForeignFileRejected(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(path, SyncNever); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file: err = %v, want ErrCorrupt", err)
	}
}

func TestFreshAndEmptyJournal(t *testing.T) {
	path := tmpJournal(t)
	w, recs, torn, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh journal: recs=%d torn=%v", len(recs), torn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening an empty-but-initialized journal is clean too.
	_, recs, torn, err = openReadOnly(t, path)
	if err != nil || len(recs) != 0 || torn {
		t.Fatalf("reopen: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

// TestTornMagicHeader: a file shorter than the magic header (torn during
// creation) is reinitialized, not rejected.
func TestTornMagicHeader(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, Magic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, _, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from a headerless file", len(recs))
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err = openReadOnly(t, path)
	if err != nil || len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("after reinit: recs=%q err=%v", recs, err)
	}
}

func TestOversizedAppendRefused(t *testing.T) {
	path := tmpJournal(t)
	w, _, _, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	// The refusal is not sticky: the writer stays usable.
	if err := w.Append([]byte("fine")); err != nil {
		t.Fatalf("append after refusal: %v", err)
	}
}

func TestAppendAllocFree(t *testing.T) {
	path := tmpJournal(t)
	w, _, _, err := Open(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte("p"), 256)
	if err := w.Append(payload); err != nil { // warm the frame buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"never", SyncNever, true},
		{"none", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncAlways.String() != "always" || SyncNever.String() != "never" {
		t.Error("SyncPolicy.String round trip broken")
	}
}
