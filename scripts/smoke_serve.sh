#!/bin/sh
# smoke_serve.sh — end-to-end smoke for the simulation service: build
# visad + visaload, start a daemon, hammer it with N concurrent clients
# submitting the same plan (asserting byte-identical reports and stream
# replays), check the health/metrics endpoints, then SIGTERM the daemon
# and require a clean drain (exit 0).
#
# Usage: scripts/smoke_serve.sh [clients]
set -eu

CLIENTS="${1:-50}"
GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "smoke: building visad and visaload"
"$GO" build -o "$TMP/visad" ./cmd/visad
"$GO" build -o "$TMP/visaload" ./cmd/visaload

"$TMP/visad" -addr 127.0.0.1:0 -j 2 -workers 4 -queue 64 2>"$TMP/visad.log" &
VISAD_PID=$!

# Wait for the daemon to report its ephemeral address.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$TMP/visad.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$VISAD_PID" 2>/dev/null || { cat "$TMP/visad.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "smoke: visad never listened"; cat "$TMP/visad.log"; exit 1; }
BASE="http://$ADDR"
echo "smoke: visad up at $BASE"

echo "smoke: $CLIENTS concurrent clients, same plan, byte-identical reports"
"$TMP/visaload" -addr "$BASE" -clients "$CLIENTS" -stream

if command -v curl >/dev/null 2>&1; then
    echo "smoke: health/metrics endpoints"
    curl -fsS "$BASE/v1/healthz" | grep -q '"status":"ok"'
    curl -fsS "$BASE/v1/metrics" | grep -q 'serve.jobs.completed'
fi

echo "smoke: SIGTERM drain"
kill -TERM "$VISAD_PID"
if ! wait "$VISAD_PID"; then
    echo "smoke: visad exited nonzero after SIGTERM"
    cat "$TMP/visad.log"
    exit 1
fi
grep -q "drained" "$TMP/visad.log" || { echo "smoke: no drain confirmation"; cat "$TMP/visad.log"; exit 1; }

echo "smoke: OK"
