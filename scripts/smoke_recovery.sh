#!/bin/sh
# smoke_recovery.sh — shell-level crash-recovery smoke: build visad, start
# it with a write-ahead journal, submit a plan, SIGKILL the daemon (no
# drain), restart on the same journal at a different -j, and require the
# job to reach done with a non-empty report and a recovery summary on
# stderr. Proves the kill-and-restart story works binary-to-binary with
# nothing but curl.
#
# Usage: scripts/smoke_recovery.sh
set -eu

GO="${GO:-go}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

command -v curl >/dev/null 2>&1 || { echo "smoke-recovery: curl not available, skipping"; exit 0; }

echo "smoke-recovery: building visad"
"$GO" build -o "$TMP/visad" ./cmd/visad

JOURNAL="$TMP/visad.wal"

start_visad() {
    # $1: -j value, $2: log file
    "$TMP/visad" -addr 127.0.0.1:0 -j "$1" -journal "$JOURNAL" 2>"$2" &
    VISAD_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$2")"
        [ -n "$ADDR" ] && break
        kill -0 "$VISAD_PID" 2>/dev/null || { cat "$2"; exit 1; }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "smoke-recovery: visad never listened"; cat "$2"; exit 1; }
    BASE="http://$ADDR"
}

start_visad 1 "$TMP/visad1.log"
echo "smoke-recovery: visad up at $BASE (journal $JOURNAL)"

PLAN='{"version":1,"kind":"custom","name":"smoke","jobs":[{"version":1,"bench":"cnt","config":{"instances":3,"label":"smoke/cnt"}},{"version":1,"bench":"srt","config":{"instances":3,"label":"smoke/srt"}}]}'
ID="$(curl -fsS -X POST -H 'X-Client-ID: smoke' -d "$PLAN" "$BASE/v1/jobs" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || { echo "smoke-recovery: submit failed"; exit 1; }
echo "smoke-recovery: submitted $ID, SIGKILL (no drain)"

kill -9 "$VISAD_PID"
wait "$VISAD_PID" 2>/dev/null || true

start_visad 4 "$TMP/visad2.log"
grep -q "journal $JOURNAL" "$TMP/visad2.log" \
    || { echo "smoke-recovery: no recovery summary"; cat "$TMP/visad2.log"; exit 1; }
echo "smoke-recovery: restarted at -j 4: $(grep "journal $JOURNAL" "$TMP/visad2.log" | head -1)"

STATUS=""
for _ in $(seq 1 600); do
    DOC="$(curl -fsS "$BASE/v1/jobs/$ID")"
    STATUS="$(printf '%s' "$DOC" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')"
    [ "$STATUS" = "done" ] && break
    [ "$STATUS" = "failed" ] && { echo "smoke-recovery: job failed: $DOC"; exit 1; }
    sleep 0.1
done
[ "$STATUS" = "done" ] || { echo "smoke-recovery: job never finished (status '$STATUS')"; exit 1; }
printf '%s' "$DOC" | grep -q '"recovered":true' \
    || { echo "smoke-recovery: job not flagged recovered: $DOC"; exit 1; }
printf '%s' "$DOC" | grep -q '"report":"[^"]' \
    || { echo "smoke-recovery: empty report after recovery: $DOC"; exit 1; }
printf '%s' "$DOC" | grep -q '"report_hash":"[0-9a-f]\{64\}"' \
    || { echo "smoke-recovery: missing report hash: $DOC"; exit 1; }

echo "smoke-recovery: clean drain of the recovered daemon"
kill -TERM "$VISAD_PID"
wait "$VISAD_PID" || { echo "smoke-recovery: unclean exit"; cat "$TMP/visad2.log"; exit 1; }

echo "smoke-recovery: OK"
