module visa

go 1.22
